package strabon

// Mapped-snapshot tests: a Snapshot backed by a packed snapshot file
// must be observationally identical to the heap snapshot it was
// written from, and a RestorePacked store must answer reads in place
// until the first mutation materialises it.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/colpack"
	"repro/internal/geo"
	"repro/internal/rdf"
)

// packFixture writes st's current snapshot as a packed file and opens
// it. The reader is closed with the test.
func packFixture(t *testing.T, st *Store, seq uint64) *colpack.Reader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.pack")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := colpack.Write(f, st.Snapshot().PackData(seq)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := colpack.Open(path)
	if err != nil {
		t.Fatalf("opening just-written packed snapshot: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// packedFixtureStore builds a store with enough variety to exercise
// every section: multiple predicates, shared objects, literals with
// datatypes and language tags, and spatial literals.
func packedFixtureStore(n int) *Store {
	st := NewStore()
	var batch []rdf.Triple
	for i := 0; i < n; i++ {
		s := rdf.IRI(fmt.Sprintf("http://ex/s%d", i))
		batch = append(batch,
			rdf.NewTriple(s, rdf.IRI(rdf.RDFType), rdf.IRI(fmt.Sprintf("http://ex/Class%d", i%5))),
			rdf.NewTriple(s, rdf.IRI("http://ex/val"), rdf.IntegerLiteral(int64(i%97))),
			rdf.NewTriple(s, rdf.IRI("http://ex/label"), rdf.LangLiteral(fmt.Sprintf("item %d", i), "en")))
		if i%10 == 0 {
			batch = append(batch, rdf.NewTriple(s, rdf.IRI("http://ex/geom"),
				rdf.TypedLiteral(fmt.Sprintf("POINT (%d.5 %d.5)", 20+i%40, 30+i%30),
					"http://strdf.di.uoa.gr/ontology#WKT")))
		}
	}
	st.AddAll(batch)
	return st
}

func TestMappedSnapshotEquivalence(t *testing.T) {
	st := packedFixtureStore(500)
	heap := st.Snapshot()
	mapped := NewMappedSnapshot(packFixture(t, st, 42))

	if !mapped.Mapped() || heap.Mapped() {
		t.Fatal("Mapped() misreports mode")
	}
	if mapped.NRows() != heap.NRows() {
		t.Fatalf("NRows: mapped %d, heap %d", mapped.NRows(), heap.NRows())
	}
	if mapped.Version() != heap.Version() {
		t.Fatalf("Version: mapped %d, heap %d", mapped.Version(), heap.Version())
	}

	// Every row decodes identically, via Row, ColID and DecodeAll.
	for row := int32(0); row < int32(heap.NRows()); row++ {
		hs, hp, ho := heap.Row(row)
		ms, mp, mo := mapped.Row(row)
		if hs != ms || hp != mp || ho != mo {
			t.Fatalf("row %d: mapped (%d,%d,%d), heap (%d,%d,%d)", row, ms, mp, mo, hs, hp, ho)
		}
		for comp, want := range []uint64{hs, hp, ho} {
			if got := mapped.ColID(comp, row); got != want {
				t.Fatalf("ColID(%d, %d) = %d, want %d", comp, row, got, want)
			}
		}
	}
	ids := []uint64{0, 1, 2, 3, uint64(heap.dict.Len()), uint64(heap.dict.Len()) + 1, 1 << 40}
	hOut := make([]rdf.Term, len(ids))
	mOut := make([]rdf.Term, len(ids))
	heap.DecodeAll(ids, hOut)
	mapped.DecodeAll(ids, mOut)
	for i := range ids {
		if hOut[i] != mOut[i] {
			t.Fatalf("DecodeAll id %d: mapped %v, heap %v", ids[i], mOut[i], hOut[i])
		}
	}

	// Term lookup round-trips for every dictionary term and misses
	// cleanly for unknown ones.
	for id := uint64(1); id <= uint64(heap.dict.Len()); id++ {
		term, ok := mapped.DecodeTerm(id)
		if !ok {
			t.Fatalf("DecodeTerm(%d) missing", id)
		}
		want, _ := heap.DecodeTerm(id)
		if term != want {
			t.Fatalf("DecodeTerm(%d) = %v, want %v", id, term, want)
		}
		back, ok := mapped.Lookup(term)
		if !ok || back != id {
			t.Fatalf("Lookup(%v) = (%d, %v), want (%d, true)", term, back, ok, id)
		}
	}
	if _, ok := mapped.Lookup(rdf.IRI("http://ex/never-inserted")); ok {
		t.Fatal("Lookup hit for unknown term")
	}

	// MatchRows and Cardinality agree across pattern shapes.
	typeID, _ := heap.Lookup(rdf.IRI(rdf.RDFType))
	classID, _ := heap.Lookup(rdf.IRI("http://ex/Class1"))
	s7, _ := heap.Lookup(rdf.IRI("http://ex/s7"))
	pats := []TriplePattern{
		{},
		{P: typeID},
		{S: s7},
		{O: classID},
		{P: typeID, O: classID},
		{S: s7, P: typeID},
		{S: s7, P: typeID, O: classID + 1},
		{S: 1 << 40},
	}
	var hBuf, mBuf []int32
	for _, pat := range pats {
		want := heap.MatchRows(pat, &hBuf)
		got := mapped.MatchRows(pat, &mBuf)
		if len(got) != len(want) {
			t.Fatalf("pattern %+v: mapped %d rows, heap %d", pat, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pattern %+v row %d: mapped %d, heap %d", pat, i, got[i], want[i])
			}
		}
		if gc, wc := mapped.Cardinality(pat), heap.Cardinality(pat); gc != wc {
			t.Fatalf("pattern %+v: mapped cardinality %d, heap %d", pat, gc, wc)
		}
	}

	// Spatial: same ids, candidates, geometries and selectivity.
	hGeoms := heap.GeomIDs()
	mGeoms := mapped.GeomIDs()
	if len(hGeoms) != len(mGeoms) {
		t.Fatalf("GeomIDs: mapped %d, heap %d", len(mGeoms), len(hGeoms))
	}
	for i := range hGeoms {
		if hGeoms[i] != mGeoms[i] {
			t.Fatalf("GeomIDs[%d]: mapped %d, heap %d", i, mGeoms[i], hGeoms[i])
		}
		hg, _ := heap.Geometry(hGeoms[i])
		mg, ok := mapped.Geometry(hGeoms[i])
		if !ok {
			t.Fatalf("Geometry(%d) missing on mapped", hGeoms[i])
		}
		if hg.Geom.Envelope() != mg.Geom.Envelope() {
			t.Fatalf("Geometry(%d) envelope mismatch", hGeoms[i])
		}
	}
	box := geo.Envelope{MinX: 20, MinY: 30, MaxX: 35, MaxY: 45}
	hc := heap.SpatialCandidates(box)
	mc := mapped.SpatialCandidates(box)
	if len(hc) != len(mc) {
		t.Fatalf("SpatialCandidates: mapped %d, heap %d", len(mc), len(hc))
	}
	if hs, ms := heap.SpatialSelectivity(box), mapped.SpatialSelectivity(box); hs != ms {
		t.Fatalf("SpatialSelectivity: mapped %v, heap %v", ms, hs)
	}

	// Planner statistics come straight from the stats section.
	hStats, mStats := heap.Stats(), mapped.Stats()
	if hStats.Triples != mStats.Triples || hStats.DistinctS != mStats.DistinctS ||
		hStats.DistinctP != mStats.DistinctP || hStats.DistinctO != mStats.DistinctO ||
		hStats.Geoms != mStats.Geoms || len(hStats.Pred) != len(mStats.Pred) {
		t.Fatalf("Stats mismatch: mapped %+v, heap %+v", mStats, hStats)
	}
	for id, want := range hStats.Pred {
		if got := mStats.Pred[id]; got != want {
			t.Fatalf("Pred[%d]: mapped %+v, heap %+v", id, got, want)
		}
	}
}

func TestRestorePackedServesInPlace(t *testing.T) {
	src := packedFixtureStore(200)
	r := packFixture(t, src, 7)
	st, err := RestorePacked(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.StorageMode() != "mapped" {
		t.Fatalf("StorageMode = %q, want mapped", st.StorageMode())
	}
	if st.Len() != src.Len() {
		t.Fatalf("Len = %d, want %d", st.Len(), src.Len())
	}
	if st.Version() != src.Version() {
		t.Fatalf("Version = %d, want %d", st.Version(), src.Version())
	}
	// Reads that must NOT materialise.
	typeID, err := st.LookupID(rdf.IRI(rdf.RDFType))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.LookupID(rdf.IRI("http://ex/missing")); err == nil {
		t.Fatal("LookupID hit for unknown term")
	}
	if got, want := st.Cardinality(TriplePattern{P: typeID}), src.Cardinality(TriplePattern{P: typeID}); got != want {
		t.Fatalf("Cardinality = %d, want %d", got, want)
	}
	stats := st.Stats()
	if stats.Triples != src.Len() || stats.Predicates == 0 || stats.SpatialLiterals == 0 {
		t.Fatalf("Stats = %+v", stats)
	}
	sn := st.Snapshot()
	if !sn.Mapped() {
		t.Fatal("Snapshot() of a packed store is not mapped")
	}
	if sn != st.Snapshot() {
		t.Fatal("mapped snapshot not cached")
	}
	rows := sn.MatchRows(TriplePattern{P: typeID}, nil)
	if len(rows) != 200 {
		t.Fatalf("MatchRows = %d rows, want 200", len(rows))
	}
	if st.StorageMode() != "mapped" {
		t.Fatal("reads materialised the store")
	}
	if st.ResidentEstimate() >= src.ResidentEstimate() {
		t.Fatalf("mapped resident estimate %d not below heap %d",
			st.ResidentEstimate(), src.ResidentEstimate())
	}

	// First mutation materialises; contents stay identical plus the new
	// triple, dictionary ids are preserved, and the pre-mutation mapped
	// snapshot keeps serving its old view.
	extra := rdf.NewTriple(rdf.IRI("http://ex/new"), rdf.IRI(rdf.RDFType), rdf.IRI("http://ex/Class0"))
	if !st.Add(extra) {
		t.Fatal("Add failed")
	}
	if st.StorageMode() != "heap" {
		t.Fatal("mutation did not materialise the store")
	}
	if st.Len() != src.Len()+1 {
		t.Fatalf("Len after add = %d", st.Len())
	}
	for id := uint64(1); id <= uint64(src.Dict().Len()); id++ {
		want, _ := src.Dict().Decode(id)
		got, ok := st.Dict().Decode(id)
		if !ok || got != want {
			t.Fatalf("id %d changed across materialisation: %v vs %v", id, got, want)
		}
	}
	if sn.NRows() != 200*3+20 {
		t.Fatal("old mapped snapshot changed size after materialisation")
	}
	sn2 := st.Snapshot()
	if sn2.Mapped() {
		t.Fatal("post-mutation snapshot still mapped")
	}
	if got := sn2.MatchRows(TriplePattern{P: typeID}, nil); len(got) != 201 {
		t.Fatalf("post-mutation MatchRows = %d rows, want 201", len(got))
	}
}

func TestRestorePackedRemoveAndSpatialToggle(t *testing.T) {
	src := packedFixtureStore(50)
	st, err := RestorePacked(packFixture(t, src, 3))
	if err != nil {
		t.Fatal(err)
	}
	victim := rdf.NewTriple(rdf.IRI("http://ex/s3"), rdf.IRI(rdf.RDFType), rdf.IRI("http://ex/Class3"))
	if !st.Remove(victim) {
		t.Fatal("Remove on packed store failed")
	}
	if st.Len() != src.Len()-1 {
		t.Fatalf("Len = %d", st.Len())
	}

	st2, err := RestorePacked(packFixture(t, src, 3))
	if err != nil {
		t.Fatal(err)
	}
	st2.SetSpatialIndexEnabled(false)
	box := geo.Envelope{MinX: 0, MinY: 0, MaxX: 90, MaxY: 90}
	if got, want := len(st2.SpatialCandidates(box)), len(src.SpatialCandidates(box)); got != want {
		t.Fatalf("scan-path candidates = %d, want %d", got, want)
	}
}

// TestMappedSnapshotConcurrent drives the lazy decode caches from many
// goroutines; run with -race to verify the lock-free paths.
func TestMappedSnapshotConcurrent(t *testing.T) {
	st := packedFixtureStore(300)
	heap := st.Snapshot()
	mapped := NewMappedSnapshot(packFixture(t, st, 9))
	typeID, _ := heap.Lookup(rdf.IRI(rdf.RDFType))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []int32
			for iter := 0; iter < 20; iter++ {
				rows := mapped.MatchRows(TriplePattern{P: typeID}, &buf)
				if len(rows) != 300 {
					t.Errorf("worker %d: %d rows", w, len(rows))
					return
				}
				for _, r := range rows[:10] {
					s, _, o := mapped.Row(r)
					if _, ok := mapped.DecodeTerm(s); !ok {
						t.Errorf("worker %d: DecodeTerm(%d) missing", w, s)
						return
					}
					if _, ok := mapped.DecodeTerm(o); !ok {
						t.Errorf("worker %d: DecodeTerm(%d) missing", w, o)
						return
					}
				}
				id := uint64(w*7+iter) % uint64(heap.dict.Len())
				if id > 0 {
					term, _ := mapped.DecodeTerm(id)
					if got, ok := mapped.Lookup(term); !ok || got != id {
						t.Errorf("worker %d: Lookup round-trip failed for id %d", w, id)
						return
					}
				}
				mapped.SpatialCandidates(geo.Envelope{MinX: 20, MinY: 30, MaxX: 40, MaxY: 50})
			}
		}(w)
	}
	wg.Wait()
}

// TestPackDataFromMapped re-packs a mapped snapshot and verifies the
// copy opens and matches — the path a replica would take if asked to
// checkpoint before any write.
func TestPackDataFromMapped(t *testing.T) {
	st := packedFixtureStore(120)
	mapped := NewMappedSnapshot(packFixture(t, st, 5))
	path := filepath.Join(t.TempDir(), "repack.pack")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := colpack.Write(f, mapped.PackData(5)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := colpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	again := NewMappedSnapshot(r2)
	if again.NRows() != mapped.NRows() {
		t.Fatalf("NRows = %d, want %d", again.NRows(), mapped.NRows())
	}
	for id := uint64(1); id <= uint64(st.Dict().Len()); id++ {
		a, _ := again.DecodeTerm(id)
		b, _ := mapped.DecodeTerm(id)
		if a != b {
			t.Fatalf("term %d mismatch after re-pack", id)
		}
	}
}
