package strabon

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/column"
	"repro/internal/rdf"
)

func TestCompact(t *testing.T) {
	st := NewStore()
	for i := 0; i < 100; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)))
	}
	for i := 0; i < 50; i++ {
		st.Remove(tr(fmt.Sprintf("s%d", i*2), "p", fmt.Sprintf("o%d", i*2)))
	}
	pID, _ := st.LookupID(rdf.IRI("p"))
	before := st.MatchIDs(TriplePattern{P: pID})
	beforeTerms := decodeObjects(t, st, before)

	if got := st.Compact(); got != 50 {
		t.Fatalf("reclaimed = %d", got)
	}
	if st.Len() != 50 {
		t.Fatalf("len = %d", st.Len())
	}
	// Same logical contents after compaction.
	after := st.MatchIDs(TriplePattern{P: pID})
	afterTerms := decodeObjects(t, st, after)
	if len(afterTerms) != len(beforeTerms) {
		t.Fatalf("rows %d != %d", len(afterTerms), len(beforeTerms))
	}
	for i := range beforeTerms {
		if beforeTerms[i] != afterTerms[i] {
			t.Fatalf("row %d: %s != %s", i, afterTerms[i], beforeTerms[i])
		}
	}
	// Second compaction is a no-op.
	if st.Compact() != 0 {
		t.Fatal("idempotent")
	}
	// Mutations keep working after compaction.
	if !st.Add(tr("new", "p", "x")) {
		t.Fatal("add after compact")
	}
	if !st.Remove(tr("s1", "p", "o1")) {
		t.Fatal("remove after compact")
	}
	if st.Len() != 50 {
		t.Fatalf("len = %d", st.Len())
	}
}

func decodeObjects(t *testing.T, st *Store, rows []int) []string {
	t.Helper()
	var out []string
	for _, row := range rows {
		_, _, o := st.Row(row)
		term, ok := st.Dict().Decode(o)
		if !ok {
			t.Fatal("decode")
		}
		out = append(out, term.Value)
	}
	sort.Strings(out)
	return out
}

func TestAsTable(t *testing.T) {
	st := NewStore()
	st.Add(tr("a", "p", "x"))
	st.Add(tr("b", "p", "y"))
	st.Add(tr("c", "q", "z"))
	st.Remove(tr("b", "p", "y"))
	tbl := st.AsTable()
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// The id columns decode back to the original terms.
	for i := 0; i < tbl.NumRows(); i++ {
		for _, col := range []string{"s", "p", "o"} {
			id := uint64(tbl.Col(col).Int(i))
			if _, ok := st.Dict().Decode(id); !ok {
				t.Fatalf("row %d column %s: id %d does not decode", i, col, id)
			}
		}
	}
	// Predicate selection on the relational face matches the index.
	pID, _ := st.LookupID(rdf.IRI("p"))
	hits := tbl.Col("p").SelectInt(column.Eq, int64(pID))
	if len(hits) != len(st.MatchIDs(TriplePattern{P: pID})) {
		t.Fatalf("relational selection = %d rows", len(hits))
	}
}
