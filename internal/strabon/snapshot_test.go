package strabon

// Snapshot statistics tests live alongside the snapshot tests: the
// planner's estimates are only as good as these counts.

import (
	"fmt"
	"testing"

	"repro/internal/geo"
	"repro/internal/rdf"
)

func snapFixture() *Store {
	st := NewStore()
	for i := 0; i < 10; i++ {
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI(rdf.RDFType),
			rdf.IRI("http://ex/Thing")))
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI("http://ex/val"),
			rdf.IntegerLiteral(int64(i))))
	}
	return st
}

func TestSnapshotCachedUntilMutation(t *testing.T) {
	st := snapFixture()
	s1 := st.Snapshot()
	s2 := st.Snapshot()
	if s1 != s2 {
		t.Fatal("snapshot not cached across reads of an unchanged store")
	}
	st.Add(rdf.NewTriple(rdf.IRI("http://ex/new"), rdf.IRI(rdf.RDFType), rdf.IRI("http://ex/Thing")))
	s3 := st.Snapshot()
	if s3 == s1 {
		t.Fatal("snapshot not invalidated by a mutation")
	}
	if s3.NRows() != s1.NRows()+1 {
		t.Fatalf("rows: %d vs %d", s3.NRows(), s1.NRows())
	}
}

func TestSnapshotImmutableAfterRemove(t *testing.T) {
	st := snapFixture()
	sn := st.Snapshot()
	before := sn.NRows()
	tr := rdf.NewTriple(rdf.IRI("http://ex/s3"), rdf.IRI(rdf.RDFType), rdf.IRI("http://ex/Thing"))
	if !st.Remove(tr) {
		t.Fatal("remove failed")
	}
	st.Compact()
	if sn.NRows() != before {
		t.Fatal("snapshot mutated by Remove/Compact")
	}
	// The old snapshot still matches the removed triple.
	typeID, _ := sn.Dict().Lookup(rdf.IRI(rdf.RDFType))
	sID, _ := sn.Dict().Lookup(rdf.IRI("http://ex/s3"))
	rows := sn.MatchRows(TriplePattern{S: sID, P: typeID}, nil)
	if len(rows) != 1 {
		t.Fatalf("old snapshot lost the removed triple: %d rows", len(rows))
	}
	// A fresh snapshot does not.
	rows = st.Snapshot().MatchRows(TriplePattern{S: sID, P: typeID}, nil)
	if len(rows) != 0 {
		t.Fatalf("new snapshot still matches the removed triple: %d rows", len(rows))
	}
}

func TestSnapshotMatchRowsAgainstMatchIDs(t *testing.T) {
	st := snapFixture()
	sn := st.Snapshot()
	thingID, _ := sn.Dict().Lookup(rdf.IRI("http://ex/Thing"))
	typeID, _ := sn.Dict().Lookup(rdf.IRI(rdf.RDFType))
	pats := []TriplePattern{
		{},                          // full scan
		{P: typeID},                 // single component
		{P: typeID, O: thingID},     // two components
		{S: 1, P: typeID, O: 99999}, // no match
	}
	var buf []int32
	for _, pat := range pats {
		want := st.MatchIDs(pat)
		got := sn.MatchRows(pat, &buf)
		if len(got) != len(want) {
			t.Fatalf("pattern %+v: snapshot %d rows, store %d rows", pat, len(got), len(want))
		}
		for i := range got {
			gs, gp, go_ := sn.Row(got[i])
			ws, wp, wo := st.Row(want[i])
			if gs != ws || gp != wp || go_ != wo {
				t.Fatalf("pattern %+v row %d: snapshot (%d,%d,%d) store (%d,%d,%d)",
					pat, i, gs, gp, go_, ws, wp, wo)
			}
		}
	}
}

func TestSnapshotDecodeAll(t *testing.T) {
	st := snapFixture()
	sn := st.Snapshot()
	ids := []uint64{0, 1, 2, 1 << 62}
	out := make([]rdf.Term, len(ids))
	sn.DecodeAll(ids, out)
	if !out[0].IsZero() || !out[3].IsZero() {
		t.Fatal("unknown ids must decode to zero terms")
	}
	want, _ := sn.Dict().Decode(1)
	if out[1] != want {
		t.Fatalf("DecodeAll[1] = %v, want %v", out[1], want)
	}
}

// TestCompactPrunesStaleGeometries is the regression test for stale
// spatial entries: geometries of fully-deleted object ids must leave both
// the geometry cache and the R-tree during Compact.
func TestCompactPrunesStaleGeometries(t *testing.T) {
	st := NewStore()
	wkt := `POINT (23.5 37.5)`
	geomTerm := rdf.TypedLiteral(wkt, "http://strdf.di.uoa.gr/ontology#WKT")
	tr := rdf.NewTriple(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/geom"), geomTerm)
	st.Add(tr)
	keep := rdf.NewTriple(rdf.IRI("http://ex/k"), rdf.IRI("http://ex/geom"),
		rdf.TypedLiteral("POINT (24.5 38.5)", "http://strdf.di.uoa.gr/ontology#WKT"))
	st.Add(keep)
	box := geo.Envelope{MinX: 23, MinY: 37, MaxX: 24, MaxY: 38}
	if got := st.SpatialCandidates(box); len(got) != 1 {
		t.Fatalf("pre-delete candidates = %d", len(got))
	}
	if !st.Remove(tr) {
		t.Fatal("remove failed")
	}
	// Before Compact the stale geometry may linger; Compact must purge it.
	st.Compact()
	if got := st.SpatialCandidates(box); len(got) != 0 {
		t.Fatalf("stale spatial candidates after Compact: %v", got)
	}
	if st.Stats().SpatialLiterals != 1 {
		t.Fatalf("spatial literals = %d, want 1 (the kept geometry)", st.Stats().SpatialLiterals)
	}
	// The kept geometry must survive in the rebuilt R-tree.
	keepBox := geo.Envelope{MinX: 24, MinY: 38, MaxX: 25, MaxY: 39}
	if got := st.SpatialCandidates(keepBox); len(got) != 1 {
		t.Fatalf("kept geometry missing after Compact: %v", got)
	}
	// And the scan path (spatial index disabled) agrees.
	st.SetSpatialIndexEnabled(false)
	if got := st.SpatialCandidates(box); len(got) != 0 {
		t.Fatalf("scan path still sees stale geometry: %v", got)
	}
}

func TestAddAllBatchCount(t *testing.T) {
	st := NewStore()
	tr := func(i int) rdf.Triple {
		return rdf.NewTriple(rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI("http://ex/p"), rdf.IntegerLiteral(int64(i)))
	}
	batch := []rdf.Triple{tr(0), tr(1), tr(2), tr(1)} // one duplicate
	if n := st.AddAll(batch); n != 3 {
		t.Fatalf("AddAll = %d, want 3", n)
	}
	if n := st.AddAll(batch); n != 0 {
		t.Fatalf("second AddAll = %d, want 0", n)
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestRemoveSortedPostingLists(t *testing.T) {
	st := NewStore()
	subj := rdf.IRI("http://ex/s")
	var triples []rdf.Triple
	for i := 0; i < 100; i++ {
		triples = append(triples, rdf.NewTriple(subj, rdf.IRI("http://ex/p"), rdf.IntegerLiteral(int64(i))))
	}
	st.AddAll(triples)
	// Remove from the middle, the front, and the back; matches must stay
	// exact (binary-searched posting lists).
	for _, i := range []int{50, 0, 99, 25, 75} {
		if !st.Remove(triples[i]) {
			t.Fatalf("remove %d failed", i)
		}
	}
	sID, _ := st.LookupID(subj)
	if got := len(st.MatchIDs(TriplePattern{S: sID})); got != 95 {
		t.Fatalf("matches after removals = %d, want 95", got)
	}
	if st.Len() != 95 {
		t.Fatalf("Len = %d", st.Len())
	}
}

// TestSnapshotStats pins the planner statistics: per-predicate counts,
// distinct subject/object counts, global distincts, and lazy caching.
func TestSnapshotStats(t *testing.T) {
	st := NewStore()
	// 6 subjects typed Thing (one type object), 3 with val (distinct
	// objects), plus one subject linking to two others.
	for i := 0; i < 6; i++ {
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI(rdf.RDFType),
			rdf.IRI("http://ex/Thing")))
	}
	for i := 0; i < 3; i++ {
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI("http://ex/val"),
			rdf.IntegerLiteral(int64(i))))
	}
	st.Add(rdf.NewTriple(rdf.IRI("http://ex/s0"), rdf.IRI("http://ex/link"), rdf.IRI("http://ex/s1")))
	st.Add(rdf.NewTriple(rdf.IRI("http://ex/s0"), rdf.IRI("http://ex/link"), rdf.IRI("http://ex/s2")))

	sn := st.Snapshot()
	stats := sn.Stats()
	if stats.Triples != 11 {
		t.Fatalf("Triples = %d, want 11", stats.Triples)
	}
	if stats.DistinctS != 6 || stats.DistinctP != 3 {
		t.Fatalf("DistinctS/P = %d/%d, want 6/3", stats.DistinctS, stats.DistinctP)
	}
	typeID, _ := st.LookupID(rdf.IRI(rdf.RDFType))
	valID, _ := st.LookupID(rdf.IRI("http://ex/val"))
	linkID, _ := st.LookupID(rdf.IRI("http://ex/link"))
	if ps := stats.Pred[typeID]; ps.Count != 6 || ps.DistinctS != 6 || ps.DistinctO != 1 {
		t.Fatalf("rdf:type stats = %+v, want {6 6 1}", ps)
	}
	if ps := stats.Pred[valID]; ps.Count != 3 || ps.DistinctS != 3 || ps.DistinctO != 3 {
		t.Fatalf("val stats = %+v, want {3 3 3}", ps)
	}
	if ps := stats.Pred[linkID]; ps.Count != 2 || ps.DistinctS != 1 || ps.DistinctO != 2 {
		t.Fatalf("link stats = %+v, want {2 1 2}", ps)
	}
	if again := sn.Stats(); again != stats {
		t.Fatal("Stats not cached per snapshot")
	}
	// A mutation yields a fresh snapshot with fresh statistics.
	st.Add(rdf.NewTriple(rdf.IRI("http://ex/s7"), rdf.IRI(rdf.RDFType), rdf.IRI("http://ex/Thing")))
	if st.Snapshot().Stats().Triples != 12 {
		t.Fatal("stats not rebuilt after mutation")
	}
}

// TestSpatialSelectivity: the R-tree-backed fraction matches the
// candidate count over the geometry population.
func TestSpatialSelectivity(t *testing.T) {
	st := NewStore()
	for i := 0; i < 10; i++ {
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI("http://ex/geom"),
			rdf.TypedLiteral(fmt.Sprintf("POINT (%d.5 37.5)", 20+i),
				"http://strdf.di.uoa.gr/ontology#WKT")))
	}
	sn := st.Snapshot()
	// Window covering 3 of the 10 points (x in 20.5, 21.5, 22.5).
	sel := sn.SpatialSelectivity(geo.Envelope{MinX: 20, MinY: 37, MaxX: 23, MaxY: 38})
	if sel < 0.29 || sel > 0.31 {
		t.Fatalf("selectivity = %v, want 0.3", sel)
	}
	if all := sn.SpatialSelectivity(geo.Envelope{MinX: 0, MinY: 0, MaxX: 90, MaxY: 90}); all != 1 {
		t.Fatalf("full-window selectivity = %v, want 1", all)
	}
	empty := NewStore().Snapshot()
	if sel := empty.SpatialSelectivity(geo.Envelope{MaxX: 1, MaxY: 1}); sel != 0 {
		t.Fatalf("empty-store selectivity = %v, want 0", sel)
	}
}
