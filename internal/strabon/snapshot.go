package strabon

import (
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/rtree"
	"repro/internal/strdf"
)

// Snapshot is an immutable read view of the store: the three dictionary
// columns compacted (no tombstones), component posting lists, the geometry
// cache and R-tree. All of it is private to the snapshot, so readers never
// take a lock per row — the vectorized stSPARQL executor evaluates whole
// queries against one Snapshot. Snapshots are cached per store version:
// building one is O(n), but a store that is not being mutated hands out the
// same snapshot to every query.
type Snapshot struct {
	version uint64
	dict    *rdf.Dictionary
	// S, P, O are the compacted columns: row i holds live triple i.
	S, P, O []uint64
	byS     map[uint64][]int32
	byP     map[uint64][]int32
	byO     map[uint64][]int32
	geoms   map[uint64]strdf.SpatialValue
	spatial *rtree.Tree
	useIdx  bool

	// pack, when non-nil, makes this a mapped snapshot: every read is
	// answered from a packed snapshot file (decoding blocks on demand)
	// and the heap fields above stay nil. See packed.go.
	pack *packView

	// stats is the planner's statistics view, built lazily once per
	// snapshot (the first planned query pays the O(n) pass; every later
	// query against the same store version reuses it).
	statsOnce sync.Once
	stats     *SnapshotStats
}

// Mapped reports whether the snapshot answers reads in place from a
// packed snapshot file instead of heap structures.
func (sn *Snapshot) Mapped() bool { return sn.pack != nil }

// Snapshot returns the current read view, building and caching it when the
// store has been mutated since the last one. The cached snapshot is shared
// by concurrent readers; writers invalidate it implicitly by bumping the
// store version.
func (st *Store) Snapshot() *Snapshot {
	for attempt := 0; attempt < 2; attempt++ {
		st.mu.RLock()
		if sn := st.snap; sn != nil && sn.version == st.version {
			st.mu.RUnlock()
			return sn
		}
		// Build under the read lock: the view is consistent (writers are
		// excluded) yet other readers — including concurrent cold-start
		// builds — proceed in parallel, so a snapshot rebuild never
		// serializes the endpoint's query worker pool.
		sn := st.buildSnapshotLocked()
		st.mu.RUnlock()
		st.mu.Lock()
		if st.version == sn.version {
			st.snap = sn
			st.mu.Unlock()
			return sn
		}
		// A writer committed while building; the view is consistent but
		// stale, and returning it would break read-your-writes. Rebuild.
		st.mu.Unlock()
	}
	// Sustained writes kept invalidating optimistic builds; build under
	// the write lock, which is guaranteed to install.
	st.mu.Lock()
	defer st.mu.Unlock()
	if sn := st.snap; sn != nil && sn.version == st.version {
		return sn
	}
	st.snap = st.buildSnapshotLocked()
	return st.snap
}

func (st *Store) buildSnapshotLocked() *Snapshot {
	n := len(st.s) - st.deleted
	sn := &Snapshot{
		version: st.version,
		dict:    st.dict,
		S:       make([]uint64, 0, n),
		P:       make([]uint64, 0, n),
		O:       make([]uint64, 0, n),
		geoms:   make(map[uint64]strdf.SpatialValue, len(st.geoms)),
		useIdx:  st.useSpatialIndex,
	}
	for row := range st.s {
		if st.s[row] == 0 {
			continue
		}
		sn.S = append(sn.S, st.s[row])
		sn.P = append(sn.P, st.p[row])
		sn.O = append(sn.O, st.o[row])
	}
	// Posting lists are built with a counting-sort pass over the dense
	// id space rather than per-row map appends: count occurrences per
	// id, carve one shared backing array into per-id slices, fill, and
	// insert each distinct id into the map once. On a million-row store
	// this replaces three million map operations with three linear
	// passes plus one map insert per distinct term.
	maxID := uint64(st.dict.Len())
	counts := make([]int32, maxID+1)
	sn.byS = buildPostings(sn.S, counts)
	sn.byP = buildPostings(sn.P, counts)
	sn.byO = buildPostings(sn.O, counts)
	items := make([]rtree.Item, 0, len(st.geoms))
	for id, v := range st.geoms {
		sn.geoms[id] = v
		items = append(items, rtree.Item{Box: v.Geom.Envelope(), ID: id})
	}
	// Deterministic build input (map iteration order varies).
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	sn.spatial = rtree.BulkLoad(items, 0)
	return sn
}

// buildPostings builds one component's posting-list index over a
// compacted id column via counting sort. counts is caller-provided
// scratch of length dict.Len()+1, zeroed on return.
func buildPostings(col []uint64, counts []int32) map[uint64][]int32 {
	distinct := 0
	for _, id := range col {
		if counts[id] == 0 {
			distinct++
		}
		counts[id]++
	}
	// Prefix-sum counts into start offsets; after the fill pass each
	// entry has advanced to its end offset, and since offsets are
	// assigned in id order, a slice's start is its predecessor's end.
	off := int32(0)
	for id := range counts {
		c := counts[id]
		counts[id] = off
		off += c
	}
	backing := make([]int32, len(col))
	for r, id := range col {
		backing[counts[id]] = int32(r)
		counts[id]++
	}
	idx := make(map[uint64][]int32, distinct)
	prevEnd := int32(0)
	for id := 1; id < len(counts); id++ {
		end := counts[id]
		if end != prevEnd {
			idx[uint64(id)] = backing[prevEnd:end:end]
		}
		prevEnd = end
	}
	// Zero the scratch for the next column.
	for id := range counts {
		counts[id] = 0
	}
	return idx
}

// NRows reports the number of live triples in the snapshot.
func (sn *Snapshot) NRows() int {
	if sn.pack != nil {
		return sn.pack.nRows()
	}
	return len(sn.S)
}

// Dict exposes the term dictionary backing the snapshot's ids. It is
// nil on a mapped snapshot, whose dictionary lives front-coded in the
// snapshot file — use DecodeTerm / Lookup / DecodeAll instead, which
// work in both modes.
func (sn *Snapshot) Dict() *rdf.Dictionary { return sn.dict }

// Version reports the store version this snapshot was built at.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Row returns the (s, p, o) ids of a snapshot row without locking.
func (sn *Snapshot) Row(row int32) (uint64, uint64, uint64) {
	if sn.pack != nil {
		return sn.pack.row(row)
	}
	return sn.S[row], sn.P[row], sn.O[row]
}

// ColID returns one component id (0=S, 1=P, 2=O) of a snapshot row —
// the executor's column accessor, valid in both heap and mapped mode.
func (sn *Snapshot) ColID(comp int, row int32) uint64 {
	if sn.pack != nil {
		return sn.pack.colID(comp, row)
	}
	switch comp {
	case 0:
		return sn.S[row]
	case 1:
		return sn.P[row]
	default:
		return sn.O[row]
	}
}

// DecodeTerm decodes a dictionary id in either mode.
func (sn *Snapshot) DecodeTerm(id uint64) (rdf.Term, bool) {
	if sn.pack != nil {
		return sn.pack.term(id)
	}
	return sn.dict.Decode(id)
}

// Lookup returns the dictionary id of a term in either mode.
func (sn *Snapshot) Lookup(t rdf.Term) (uint64, bool) {
	if sn.pack != nil {
		return sn.pack.lookup(t)
	}
	return sn.dict.Lookup(t)
}

// LookupID returns the dictionary id for a term (cardSource interface).
func (sn *Snapshot) LookupID(t rdf.Term) (uint64, error) {
	id, ok := sn.Lookup(t)
	if !ok {
		return 0, ErrNotFound
	}
	return id, nil
}

// MatchRows returns the snapshot rows matching the pattern. When exactly
// one component is bound the posting list itself is returned — callers
// must treat the result as read-only. Otherwise matches are written into
// *buf (the caller's reusable scratch, grown as needed) and its filled
// prefix is returned. buf may be nil for a one-shot allocation.
func (sn *Snapshot) MatchRows(pat TriplePattern, buf *[]int32) []int32 {
	if sn.pack != nil {
		return sn.pack.matchRows(pat, buf)
	}
	var scratch []int32
	if buf == nil {
		buf = &scratch
	}
	var candidate []int32
	candSet := false
	bound := 0
	consider := func(idx map[uint64][]int32, id uint64) {
		if id == 0 {
			return
		}
		bound++
		rows := idx[id]
		if !candSet || len(rows) < len(candidate) {
			candidate = rows
			candSet = true
		}
	}
	consider(sn.byS, pat.S)
	consider(sn.byP, pat.P)
	consider(sn.byO, pat.O)
	if !candSet {
		// Full scan: every live row matches.
		out := (*buf)[:0]
		for row := range sn.S {
			out = append(out, int32(row))
		}
		*buf = out
		return out
	}
	if bound == 1 {
		return candidate // shared posting list: read-only
	}
	out := (*buf)[:0]
	for _, row := range candidate {
		if pat.S != 0 && sn.S[row] != pat.S {
			continue
		}
		if pat.P != 0 && sn.P[row] != pat.P {
			continue
		}
		if pat.O != 0 && sn.O[row] != pat.O {
			continue
		}
		out = append(out, row)
	}
	*buf = out
	return out
}

// Cardinality estimates the number of matches for a pattern without
// materialising them (cardSource interface).
func (sn *Snapshot) Cardinality(pat TriplePattern) int {
	if sn.pack != nil {
		return sn.pack.cardinality(pat)
	}
	est := len(sn.S)
	if pat.S != 0 {
		if n := len(sn.byS[pat.S]); n < est {
			est = n
		}
	}
	if pat.P != 0 {
		if n := len(sn.byP[pat.P]); n < est {
			est = n
		}
	}
	if pat.O != 0 {
		if n := len(sn.byO[pat.O]); n < est {
			est = n
		}
	}
	return est
}

// Geometry returns the cached WGS84 geometry for a spatial literal id.
func (sn *Snapshot) Geometry(id uint64) (strdf.SpatialValue, bool) {
	if sn.pack != nil {
		return sn.pack.geometry(id)
	}
	v, ok := sn.geoms[id]
	return v, ok
}

// SpatialCandidates returns ids of spatial literals whose envelope
// intersects box, honouring the store's spatial-index ablation setting at
// snapshot time.
func (sn *Snapshot) SpatialCandidates(box geo.Envelope) []uint64 {
	if sn.pack != nil {
		return sn.pack.spatialCandidates(box)
	}
	if sn.useIdx {
		return sn.spatial.Search(box, nil)
	}
	var out []uint64
	for id, v := range sn.geoms {
		if v.Geom.Envelope().Intersects(box) {
			out = append(out, id)
		}
	}
	return out
}

// GeomIDs returns the ids of every spatial literal with a cached
// geometry, sorted ascending — the deterministic input the binary
// snapshot writer serialises.
func (sn *Snapshot) GeomIDs() []uint64 {
	if sn.pack != nil {
		return sn.pack.geomIDs()
	}
	out := make([]uint64, 0, len(sn.geoms))
	for id := range sn.geoms {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PredicateStats summarises one predicate's triples for the planner.
type PredicateStats struct {
	// Count is the number of triples with this predicate.
	Count int
	// DistinctS / DistinctO count the distinct subjects / objects among
	// those triples: Count/DistinctS is the expected matches of
	// (?s p ?o) once ?s is bound — the classic equality-selectivity
	// estimate the join planner uses in place of a fixed discount.
	DistinctS int
	DistinctO int
}

// SnapshotStats is the statistics view the stSPARQL planner feeds on:
// per-predicate triple and distinct-subject/object counts plus global
// distinct counts, computed once per snapshot.
type SnapshotStats struct {
	Triples   int
	DistinctS int
	DistinctP int
	DistinctO int
	// Geoms is the number of spatial literals with a cached geometry
	// (the R-tree population, the denominator of spatial selectivity).
	Geoms int
	Pred  map[uint64]PredicateStats
}

// Stats returns the snapshot's planner statistics, computing them on
// first use and caching them for the snapshot's lifetime. Safe for
// concurrent callers.
func (sn *Snapshot) Stats() *SnapshotStats {
	if sn.pack != nil {
		// Mapped snapshots carry the statistics precomputed in the
		// file's stats section: no O(n) pass, ever.
		return sn.pack.stats
	}
	sn.statsOnce.Do(func() { sn.stats = sn.buildStats() })
	return sn.stats
}

func (sn *Snapshot) buildStats() *SnapshotStats {
	st := &SnapshotStats{
		Triples:   len(sn.S),
		DistinctS: len(sn.byS),
		DistinctP: len(sn.byP),
		DistinctO: len(sn.byO),
		Geoms:     len(sn.geoms),
		Pred:      make(map[uint64]PredicateStats, len(sn.byP)),
	}
	// Distinct subjects/objects per predicate via epoch marking: one
	// shared mark slot per dictionary id, bumped per predicate, so the
	// whole pass is O(rows) with no per-predicate set allocations.
	markS := make([]uint32, sn.dict.Len()+1)
	markO := make([]uint32, sn.dict.Len()+1)
	epoch := uint32(0)
	for pid, rows := range sn.byP {
		epoch++
		ds, do := 0, 0
		for _, r := range rows {
			if s := sn.S[r]; markS[s] != epoch {
				markS[s] = epoch
				ds++
			}
			if o := sn.O[r]; markO[o] != epoch {
				markO[o] = epoch
				do++
			}
		}
		st.Pred[pid] = PredicateStats{Count: len(rows), DistinctS: ds, DistinctO: do}
	}
	return st
}

// SpatialSelectivity estimates the fraction of stored geometries whose
// envelope intersects box, by counting R-tree candidates. Exact for the
// candidate-set pruning the executor performs (which is envelope-based
// too), so the planner's spatial estimates are as good as the index.
func (sn *Snapshot) SpatialSelectivity(box geo.Envelope) float64 {
	nGeoms := len(sn.geoms)
	if sn.pack != nil {
		nGeoms = sn.pack.stats.Geoms
	}
	if nGeoms == 0 {
		return 0
	}
	return float64(len(sn.SpatialCandidates(box))) / float64(nGeoms)
}

// DecodeAll decodes a batch of ids under one dictionary lock, writing into
// out (which must have len(ids) capacity); unknown ids decode to the zero
// Term. It returns out.
func (sn *Snapshot) DecodeAll(ids []uint64, out []rdf.Term) []rdf.Term {
	if sn.pack != nil {
		return sn.pack.decodeAllTerms(ids, out)
	}
	return sn.dict.DecodeAll(ids, out)
}
