// Package colpack implements the compressed, mmap-able columnar
// snapshot format (TELPACK1) behind -snapshot-format=packed: the
// query-in-place storage layer that lets a store answer queries
// straight off the on-disk snapshot without materialising columns,
// posting lists or the dictionary into heap memory first.
//
// The building blocks:
//
//   - U64Col: frame-of-reference + bit-packed uint64 columns in
//     fixed-size blocks of 4096 values, each block carrying a min/max
//     zone map so scans can skip blocks wholesale.
//   - Posting lists: sorted row ids split into roaring-style
//     containers keyed by the high 16 bits — small containers store
//     the low 16 bits as a u16 array, dense ones as an 8 KiB bitmap.
//   - Dictionary: terms front-coded (shared-prefix compressed) in id
//     order in blocks of 64, plus a sorted permutation column that
//     makes term→id lookup a binary search over decoded blocks.
//
// A snapshot file lays these out as independent sections behind a
// footer/TOC (see file.go), so a reader maps the file and touches only
// the blocks a query needs; the OS page cache is the buffer pool.
package colpack

import (
	"encoding/binary"
	"hash/crc32"
)

const (
	// Magic identifies a packed snapshot file; it leads the file and
	// trails it (so the footer can be located from the end).
	Magic = "TELPACK1"
	// BlockSize is the number of values per U64Col block. One block is
	// the unit of decode: a query touching one row pays for one block.
	BlockSize = 4096
	// DictBlockSize is the number of terms per front-coded dictionary
	// block (the unit of term decode).
	DictBlockSize = 64
)

func crc(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

func le64(p []byte) uint64     { return binary.LittleEndian.Uint64(p) }
func le32(p []byte) uint32     { return binary.LittleEndian.Uint32(p) }
func put64(p []byte, v uint64) { binary.LittleEndian.PutUint64(p, v) }
func put32(p []byte, v uint32) { binary.LittleEndian.PutUint32(p, v) }
func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	put64(b[:], v)
	return append(dst, b[:]...)
}
func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	put32(b[:], v)
	return append(dst, b[:]...)
}

// bitWidth returns the number of bits needed to represent v.
func bitWidth(v uint64) uint {
	n := uint(0)
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}
