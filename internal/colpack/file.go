package colpack

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/rdf"
)

// Packed snapshot file layout (snap-<seq>.snap, -snapshot-format=packed):
//
//	8  bytes  magic "TELPACK1"
//	8  bytes  seq — last WAL sequence number covered
//	8  bytes  store version at capture
//	…         sections, each padded to 64-byte alignment
//	…         footer body:
//	            u32 section count
//	            32 bytes per section: id u32, pad, off u64, len u64,
//	                                  crc32 u32, pad
//	            u64 nRows, u64 nTerms, u64 nGeoms
//	            u32 file CRC-32 over every byte before the footer
//	4  bytes  footer body length
//	4  bytes  footer body CRC-32
//	8  bytes  magic "TELPACK1" (trailing, locates the footer)
//
// The seq field sits at the same offset as in the raw TELSNAP1 format,
// so tooling that sniffs (magic, seq) works on both. Readers locate
// the footer from the end, verify it, then verify the file CRC and
// each section CRC before trusting any offset — a bit flip anywhere
// makes Open fail, which is what lets recovery fall back to the
// previous snapshot generation.
const headerSize = 24

// Section ids. Columns and posting structures repeat per component
// (S, P, O) at consecutive ids.
const (
	secColS     = 1 // U64Col: subject ids, row order
	secColP     = 2
	secColO     = 3
	secPostOffS = 4 // U64Col, nTerms+1: byte offsets into the posting blob
	secPostOffP = 5
	secPostOffO = 6
	secPostCntS = 7 // U64Col, nTerms: posting cardinalities (Cardinality reads these)
	secPostCntP = 8
	secPostCntO = 9
	secPostS    = 10 // posting containers, term-id order
	secPostP    = 11
	secPostO    = 12
	secDict     = 13 // front-coded term blocks, id order
	secDictOff  = 14 // U64Col, nDictBlocks+1: block byte offsets
	secDictPerm = 15 // U64Col, nTerms: ids sorted by CompareTerms
	secGeomIDs  = 16 // U64Col: spatial literal ids, ascending
	secGeomEnvs = 17 // raw 32 bytes per geometry: envelope minx,miny,maxx,maxy f64
	secStats    = 18 // uvarint planner-statistics block
	numSections = 18
)

// PredStat is one predicate's statistics triple in the stats section.
type PredStat struct {
	ID        uint64
	Count     int
	DistinctS int
	DistinctO int
}

// StatsBlock is the precomputed planner-statistics section: what
// strabon.SnapshotStats costs an O(n) pass to build on a heap
// snapshot is just parsed on a mapped one.
type StatsBlock struct {
	Triples   int
	DistinctS int
	DistinctP int
	DistinctO int
	Geoms     int
	Pred      []PredStat
}

// SnapshotData is the writer's input: a heap snapshot's already-built
// state. Postings returns the sorted row list of id in component comp
// (0=S, 1=P, 2=O), nil when the id never appears there.
type SnapshotData struct {
	Seq      uint64
	Version  uint64
	S, P, O  []uint64
	Postings func(comp int, id uint64) []int32
	// Terms holds the dictionary in id order: Terms[i] is id i+1.
	Terms []rdf.Term
	// GeomIDs / GeomEnvs list the cached spatial literals (ascending
	// ids) and their WGS84 envelopes — enough to bulk-load the R-tree
	// without parsing a single WKT string.
	GeomIDs  []uint64
	GeomEnvs []geo.Envelope
	Stats    StatsBlock
}

// Write serialises d as a packed snapshot. The encoding is built in
// memory (it is the compressed size, strictly smaller than the heap
// state being serialised) and written in one pass.
func Write(w io.Writer, d *SnapshotData) error {
	if len(d.S) != len(d.P) || len(d.S) != len(d.O) {
		return fmt.Errorf("colpack: column length mismatch: s=%d p=%d o=%d", len(d.S), len(d.P), len(d.O))
	}
	if len(d.GeomIDs) != len(d.GeomEnvs) {
		return fmt.Errorf("colpack: geometry id/envelope length mismatch: %d vs %d", len(d.GeomIDs), len(d.GeomEnvs))
	}
	buf := make([]byte, 0, 1<<20)
	buf = append(buf, Magic...)
	buf = appendU64(buf, d.Seq)
	buf = appendU64(buf, d.Version)

	type secEntry struct {
		id       uint32
		off, len uint64
		crc      uint32
	}
	var toc []secEntry
	section := func(id uint32, encode func([]byte) []byte) {
		// Pad to 64-byte alignment so block payloads start
		// cache-line (and, for large sections, page) aligned.
		for len(buf)%64 != 0 {
			buf = append(buf, 0)
		}
		start := len(buf)
		buf = encode(buf)
		toc = append(toc, secEntry{id: id, off: uint64(start), len: uint64(len(buf) - start), crc: crc(buf[start:])})
	}

	for comp, col := range [3][]uint64{d.S, d.P, d.O} {
		col := col
		section(secColS+uint32(comp), func(b []byte) []byte { return AppendU64Col(b, col) })
	}
	// Posting blob + offset/count columns per component.
	nTerms := len(d.Terms)
	offs := make([]uint64, nTerms+1)
	cnts := make([]uint64, nTerms)
	for comp := 0; comp < 3; comp++ {
		comp := comp
		section(secPostS+uint32(comp), func(b []byte) []byte {
			start := len(b)
			for id := uint64(1); id <= uint64(nTerms); id++ {
				offs[id-1] = uint64(len(b) - start)
				rows := d.Postings(comp, id)
				cnts[id-1] = uint64(len(rows))
				if len(rows) > 0 {
					b = AppendPostings(b, rows)
				}
			}
			offs[nTerms] = uint64(len(b) - start)
			return b
		})
		section(secPostOffS+uint32(comp), func(b []byte) []byte { return AppendU64Col(b, offs) })
		section(secPostCntS+uint32(comp), func(b []byte) []byte { return AppendU64Col(b, cnts) })
	}
	var dictOffs []uint64
	section(secDict, func(b []byte) []byte {
		b, dictOffs = AppendDictBlocks(b, d.Terms)
		return b
	})
	section(secDictOff, func(b []byte) []byte { return AppendU64Col(b, dictOffs) })
	section(secDictPerm, func(b []byte) []byte {
		perm := make([]uint64, nTerms)
		for i := range perm {
			perm[i] = uint64(i + 1)
		}
		sortPerm(perm, d.Terms)
		return AppendU64Col(b, perm)
	})
	section(secGeomIDs, func(b []byte) []byte { return AppendU64Col(b, d.GeomIDs) })
	section(secGeomEnvs, func(b []byte) []byte {
		for _, e := range d.GeomEnvs {
			b = appendU64(b, math.Float64bits(e.MinX))
			b = appendU64(b, math.Float64bits(e.MinY))
			b = appendU64(b, math.Float64bits(e.MaxX))
			b = appendU64(b, math.Float64bits(e.MaxY))
		}
		return b
	})
	section(secStats, func(b []byte) []byte {
		s := d.Stats
		b = binary.AppendUvarint(b, uint64(s.Triples))
		b = binary.AppendUvarint(b, uint64(s.DistinctS))
		b = binary.AppendUvarint(b, uint64(s.DistinctP))
		b = binary.AppendUvarint(b, uint64(s.DistinctO))
		b = binary.AppendUvarint(b, uint64(s.Geoms))
		b = binary.AppendUvarint(b, uint64(len(s.Pred)))
		for _, p := range s.Pred {
			b = binary.AppendUvarint(b, p.ID)
			b = binary.AppendUvarint(b, uint64(p.Count))
			b = binary.AppendUvarint(b, uint64(p.DistinctS))
			b = binary.AppendUvarint(b, uint64(p.DistinctO))
		}
		return b
	})

	// Footer: TOC + meta + file CRC, then its own length/CRC trailer.
	fileCRC := crc(buf)
	footerStart := len(buf)
	buf = appendU32(buf, uint32(len(toc)))
	for _, e := range toc {
		buf = appendU32(buf, e.id)
		buf = appendU32(buf, 0)
		buf = appendU64(buf, e.off)
		buf = appendU64(buf, e.len)
		buf = appendU32(buf, e.crc)
		buf = appendU32(buf, 0)
	}
	buf = appendU64(buf, uint64(len(d.S)))
	buf = appendU64(buf, uint64(nTerms))
	buf = appendU64(buf, uint64(len(d.GeomIDs)))
	buf = appendU32(buf, fileCRC)
	footer := buf[footerStart:]
	buf = appendU32(buf, uint32(len(footer)))
	buf = appendU32(buf, crc(footer))
	buf = append(buf, Magic...)
	_, err := w.Write(buf)
	return err
}

// sortPerm sorts ids by their terms under CompareTerms (ids are
// i+1-indexed into terms).
func sortPerm(ids []uint64, terms []rdf.Term) {
	// Simple merge sort: deterministic, O(n log n), no dependency on
	// sort.Slice's interface boxing for this hot checkpoint path.
	tmp := make([]uint64, len(ids))
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		rec(lo, mid)
		rec(mid, hi)
		i, j := lo, mid
		for k := lo; k < hi; k++ {
			if i < mid && (j >= hi || CompareTerms(terms[ids[i]-1], terms[ids[j]-1]) <= 0) {
				tmp[k] = ids[i]
				i++
			} else {
				tmp[k] = ids[j]
				j++
			}
		}
		copy(ids[lo:hi], tmp[lo:hi])
	}
	rec(0, len(ids))
}

// Reader is an open packed snapshot: the mapped bytes plus the parsed
// TOC. All accessors are safe for concurrent use (the underlying data
// is immutable); Close unmaps.
type Reader struct {
	data    []byte
	release func() error
	seq     uint64
	version uint64
	nRows   int
	nTerms  int
	nGeoms  int
	secs    [numSections + 1][]byte
	cols    [3]*U64Col
	postOff [3]*U64Col
	postCnt [3]*U64Col
	dictOff *U64Col
	perm    *U64Col
	geomIDs *U64Col
	stats   StatsBlock
}

// Open maps path and fully verifies it: footer CRC, whole-file CRC,
// per-section CRCs and every column's block index. Verification is a
// sequential streaming pass with no allocation or parsing — the point
// of the format is that *materialisation* is lazy; integrity is not.
func Open(path string) (*Reader, error) {
	if err := faults.Eval("colpack/open"); err != nil {
		return nil, err
	}
	data, release, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	r, err := open(data, release)
	if err != nil {
		release()
		return nil, err
	}
	return r, nil
}

func open(data []byte, release func() error) (*Reader, error) {
	const trailer = 4 + 4 + 8 // footer len + footer crc + trailing magic
	if len(data) < headerSize+trailer || string(data[:8]) != Magic {
		return nil, fmt.Errorf("colpack: bad leading magic or short file (%d bytes)", len(data))
	}
	if string(data[len(data)-8:]) != Magic {
		return nil, fmt.Errorf("colpack: bad trailing magic (truncated file?)")
	}
	footerLen := int(le32(data[len(data)-16:]))
	footerCRC := le32(data[len(data)-12:])
	footerEnd := len(data) - 16
	if footerLen <= 0 || footerLen > footerEnd-headerSize {
		return nil, fmt.Errorf("colpack: implausible footer length %d", footerLen)
	}
	footer := data[footerEnd-footerLen : footerEnd]
	if crc(footer) != footerCRC {
		return nil, fmt.Errorf("colpack: footer CRC mismatch")
	}
	nSecs := int(le32(footer))
	if nSecs != numSections || len(footer) != 4+nSecs*32+24+4 {
		return nil, fmt.Errorf("colpack: footer shape mismatch (sections=%d len=%d)", nSecs, len(footer))
	}
	meta := footer[4+nSecs*32:]
	fileCRC := le32(meta[24:])
	body := data[:footerEnd-footerLen]
	if crc(body) != fileCRC {
		return nil, fmt.Errorf("colpack: file CRC mismatch")
	}
	r := &Reader{
		data:    data,
		release: release,
		seq:     le64(data[8:]),
		version: le64(data[16:]),
		nRows:   int(le64(meta)),
		nTerms:  int(le64(meta[8:])),
		nGeoms:  int(le64(meta[16:])),
	}
	for i := 0; i < nSecs; i++ {
		e := footer[4+i*32:]
		id := le32(e)
		off := le64(e[8:])
		length := le64(e[16:])
		secCRC := le32(e[24:])
		if id == 0 || id > numSections || off < headerSize || off+length > uint64(len(body)) {
			return nil, fmt.Errorf("colpack: TOC entry %d (section %d) outside file", i, id)
		}
		sec := data[off : off+length]
		if crc(sec) != secCRC {
			return nil, fmt.Errorf("colpack: section %d CRC mismatch", id)
		}
		r.secs[id] = sec
	}
	var err error
	openCol := func(id uint32, wantLen int) (*U64Col, error) {
		c, err := OpenU64Col(r.secs[id])
		if err != nil {
			return nil, fmt.Errorf("colpack: section %d: %w", id, err)
		}
		if c.Len() != wantLen {
			return nil, fmt.Errorf("colpack: section %d: %d values, want %d", id, c.Len(), wantLen)
		}
		return c, nil
	}
	for comp := 0; comp < 3; comp++ {
		if r.cols[comp], err = openCol(secColS+uint32(comp), r.nRows); err != nil {
			return nil, err
		}
		if r.postOff[comp], err = openCol(secPostOffS+uint32(comp), r.nTerms+1); err != nil {
			return nil, err
		}
		if r.postCnt[comp], err = openCol(secPostCntS+uint32(comp), r.nTerms); err != nil {
			return nil, err
		}
	}
	nDictBlocks := (r.nTerms + DictBlockSize - 1) / DictBlockSize
	if r.dictOff, err = openCol(secDictOff, nDictBlocks+1); err != nil {
		return nil, err
	}
	if r.perm, err = openCol(secDictPerm, r.nTerms); err != nil {
		return nil, err
	}
	if r.geomIDs, err = openCol(secGeomIDs, r.nGeoms); err != nil {
		return nil, err
	}
	if len(r.secs[secGeomEnvs]) != r.nGeoms*32 {
		return nil, fmt.Errorf("colpack: geometry envelope section: %d bytes for %d geometries", len(r.secs[secGeomEnvs]), r.nGeoms)
	}
	if err := r.parseStats(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) parseStats() error {
	p := r.secs[secStats]
	next := func() (uint64, error) {
		v, k := binary.Uvarint(p)
		if k <= 0 {
			return 0, fmt.Errorf("colpack: stats section: truncated")
		}
		p = p[k:]
		return v, nil
	}
	vals := make([]uint64, 6)
	for i := range vals {
		v, err := next()
		if err != nil {
			return err
		}
		vals[i] = v
	}
	r.stats = StatsBlock{
		Triples:   int(vals[0]),
		DistinctS: int(vals[1]),
		DistinctP: int(vals[2]),
		DistinctO: int(vals[3]),
		Geoms:     int(vals[4]),
	}
	nPred := int(vals[5])
	if nPred > r.nTerms {
		return fmt.Errorf("colpack: stats section: %d predicates for %d terms", nPred, r.nTerms)
	}
	r.stats.Pred = make([]PredStat, nPred)
	for i := range r.stats.Pred {
		var ps PredStat
		var err error
		if ps.ID, err = next(); err != nil {
			return err
		}
		var c, ds, do uint64
		if c, err = next(); err != nil {
			return err
		}
		if ds, err = next(); err != nil {
			return err
		}
		if do, err = next(); err != nil {
			return err
		}
		ps.Count, ps.DistinctS, ps.DistinctO = int(c), int(ds), int(do)
		r.stats.Pred[i] = ps
	}
	return nil
}

// Verify opens and fully checks path, returning the WAL sequence
// number the snapshot covers. It is what recovery and replica
// bootstrap run before trusting a file.
func Verify(path string) (uint64, error) {
	r, err := Open(path)
	if err != nil {
		return 0, err
	}
	seq := r.Seq()
	return seq, r.Close()
}

// Close releases the mapping. Callers must not use the Reader — or
// any slice handed out by it — afterwards.
func (r *Reader) Close() error { return r.release() }

// Seq reports the WAL sequence number the snapshot covers.
func (r *Reader) Seq() uint64 { return r.seq }

// Version reports the store version at capture.
func (r *Reader) Version() uint64 { return r.version }

// NRows reports the number of triples.
func (r *Reader) NRows() int { return r.nRows }

// NTerms reports the number of dictionary terms.
func (r *Reader) NTerms() int { return r.nTerms }

// NGeoms reports the number of cached spatial literals.
func (r *Reader) NGeoms() int { return r.nGeoms }

// SizeBytes reports the on-disk (mapped) size of the snapshot.
func (r *Reader) SizeBytes() int64 { return int64(len(r.data)) }

// Col returns a triple column (0=S, 1=P, 2=O).
func (r *Reader) Col(comp int) *U64Col { return r.cols[comp] }

// PostOff returns a component's posting byte-offset column
// (nTerms+1 entries; id's containers span [off[id-1], off[id])).
func (r *Reader) PostOff(comp int) *U64Col { return r.postOff[comp] }

// PostCnt returns a component's posting cardinality column.
func (r *Reader) PostCnt(comp int) *U64Col { return r.postCnt[comp] }

// PostingData returns the raw container bytes spanning [start, end)
// of a component's posting blob.
func (r *Reader) PostingData(comp int, start, end uint64) []byte {
	return r.secs[secPostS+uint32(comp)][start:end]
}

// NDictBlocks reports the number of front-coded dictionary blocks.
func (r *Reader) NDictBlocks() int {
	return (r.nTerms + DictBlockSize - 1) / DictBlockSize
}

// DictBlockData returns the byte range of dictionary block b given its
// start/end offsets (from the DictOff column) and the term count the
// block holds.
func (r *Reader) DictBlockData(start, end uint64) []byte {
	return r.secs[secDict][start:end]
}

// DictOff returns the dictionary block byte-offset column.
func (r *Reader) DictOff() *U64Col { return r.dictOff }

// Perm returns the sorted term permutation column (ids ordered by
// CompareTerms).
func (r *Reader) Perm() *U64Col { return r.perm }

// GeomIDs returns the spatial literal id column (ascending).
func (r *Reader) GeomIDs() *U64Col { return r.geomIDs }

// GeomEnv returns the i-th geometry's WGS84 envelope.
func (r *Reader) GeomEnv(i int) geo.Envelope {
	e := r.secs[secGeomEnvs][i*32:]
	return geo.Envelope{
		MinX: math.Float64frombits(le64(e)),
		MinY: math.Float64frombits(le64(e[8:])),
		MaxX: math.Float64frombits(le64(e[16:])),
		MaxY: math.Float64frombits(le64(e[24:])),
	}
}

// Stats returns the precomputed planner-statistics block.
func (r *Reader) Stats() *StatsBlock { return &r.stats }
