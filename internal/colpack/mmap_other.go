//go:build !unix

package colpack

import "os"

// mapFile on platforms without mmap falls back to reading the file
// into memory; the format and every reader API behave identically,
// only the larger-than-RAM property is lost.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
