package colpack

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rdf"
)

// The term dictionary is stored front-coded in id order: terms are
// canonically serialised (kind byte + uvarint-length-prefixed value,
// datatype and lang) and grouped into blocks of DictBlockSize. The
// first term of a block is stored whole; each subsequent term stores
// only the byte length it shares with its predecessor's canonical form
// plus the differing suffix — RDF terms in one dataset share long IRI
// prefixes, which is where most of the dictionary's compression comes
// from:
//
//	block = uvarint len0, len0 bytes,
//	        { uvarint shared, uvarint suffixLen, suffix bytes }…
//
// A separate U64Col of block byte offsets (nBlocks+1 entries) makes
// id→term a single block decode, and a sorted permutation column
// (ids ordered by CompareTerms) makes term→id a binary search.

// AppendTermCanonical appends t's canonical serialisation to dst.
func AppendTermCanonical(dst []byte, t rdf.Term) []byte {
	dst = append(dst, byte(t.Kind))
	dst = binary.AppendUvarint(dst, uint64(len(t.Value)))
	dst = append(dst, t.Value...)
	dst = binary.AppendUvarint(dst, uint64(len(t.Datatype)))
	dst = append(dst, t.Datatype...)
	dst = binary.AppendUvarint(dst, uint64(len(t.Lang)))
	dst = append(dst, t.Lang...)
	return dst
}

// parseTermCanonical decodes one canonical term.
func parseTermCanonical(p []byte) (rdf.Term, error) {
	if len(p) < 1 {
		return rdf.Term{}, fmt.Errorf("colpack: dict: empty term encoding")
	}
	t := rdf.Term{Kind: rdf.TermKind(p[0])}
	p = p[1:]
	next := func() (string, error) {
		n, k := binary.Uvarint(p)
		if k <= 0 || n > uint64(len(p)-k) {
			return "", fmt.Errorf("colpack: dict: corrupt term field length")
		}
		s := string(p[k : k+int(n)])
		p = p[k+int(n):]
		return s, nil
	}
	var err error
	if t.Value, err = next(); err != nil {
		return t, err
	}
	if t.Datatype, err = next(); err != nil {
		return t, err
	}
	t.Lang, err = next()
	return t, err
}

// CompareTerms is the total order the sorted permutation column uses:
// kind, then value, datatype, lang. Any total order works as long as
// writer and reader agree; this one avoids materialising canonical
// bytes during binary search.
func CompareTerms(a, b rdf.Term) int {
	switch {
	case a.Kind != b.Kind:
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	case a.Value != b.Value:
		if a.Value < b.Value {
			return -1
		}
		return 1
	case a.Datatype != b.Datatype:
		if a.Datatype < b.Datatype {
			return -1
		}
		return 1
	case a.Lang != b.Lang:
		if a.Lang < b.Lang {
			return -1
		}
		return 1
	}
	return 0
}

// AppendDictBlocks front-codes terms (id i+1 = terms[i]) into dst and
// returns the grown dst plus the block start offsets (len = nBlocks+1,
// relative to the start of the appended region).
func AppendDictBlocks(dst []byte, terms []rdf.Term) ([]byte, []uint64) {
	base := len(dst)
	nBlocks := (len(terms) + DictBlockSize - 1) / DictBlockSize
	offs := make([]uint64, 0, nBlocks+1)
	var prev, cur []byte
	for i, t := range terms {
		cur = AppendTermCanonical(cur[:0], t)
		if i%DictBlockSize == 0 {
			offs = append(offs, uint64(len(dst)-base))
			dst = binary.AppendUvarint(dst, uint64(len(cur)))
			dst = append(dst, cur...)
		} else {
			shared := 0
			for shared < len(prev) && shared < len(cur) && prev[shared] == cur[shared] {
				shared++
			}
			dst = binary.AppendUvarint(dst, uint64(shared))
			dst = binary.AppendUvarint(dst, uint64(len(cur)-shared))
			dst = append(dst, cur[shared:]...)
		}
		prev, cur = cur, prev
	}
	offs = append(offs, uint64(len(dst)-base))
	return dst, offs
}

// DecodeDictBlock decodes the count terms of one front-coded block
// (data = that block's byte range) into out, grown as needed.
func DecodeDictBlock(data []byte, count int, out []rdf.Term) ([]rdf.Term, error) {
	if cap(out) < count {
		out = make([]rdf.Term, 0, count)
	}
	out = out[:0]
	var canon []byte
	for i := 0; i < count; i++ {
		if i == 0 {
			n, k := binary.Uvarint(data)
			if k <= 0 || n > uint64(len(data)-k) {
				return nil, fmt.Errorf("colpack: dict: corrupt block head length")
			}
			canon = append(canon[:0], data[k:k+int(n)]...)
			data = data[k+int(n):]
		} else {
			shared, k1 := binary.Uvarint(data)
			if k1 <= 0 {
				return nil, fmt.Errorf("colpack: dict: corrupt shared-prefix length")
			}
			suffix, k2 := binary.Uvarint(data[k1:])
			if k2 <= 0 || suffix > uint64(len(data)-k1-k2) {
				return nil, fmt.Errorf("colpack: dict: corrupt suffix length")
			}
			if shared > uint64(len(canon)) {
				return nil, fmt.Errorf("colpack: dict: shared prefix %d exceeds predecessor length %d", shared, len(canon))
			}
			canon = append(canon[:shared], data[k1+k2:k1+k2+int(suffix)]...)
			data = data[k1+k2+int(suffix):]
		}
		t, err := parseTermCanonical(canon)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
