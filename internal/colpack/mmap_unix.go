//go:build unix

package colpack

import (
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the bytes plus a release
// function. The mapping is shared: the OS page cache is the buffer
// pool, and pages are faulted in only as blocks are decoded.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(fi.Size())
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
