package colpack

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/rdf"
)

func TestU64ColRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]uint64{
		"empty":      {},
		"single":     {42},
		"constant":   {9, 9, 9, 9, 9},
		"sequential": seq(3 * BlockSize),
		"maxvals":    {0, 1<<64 - 1, 1 << 63, 7},
		"one-block":  randU64(rng, BlockSize, 1<<20),
		"ragged":     randU64(rng, 2*BlockSize+17, 1<<40),
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			enc := AppendU64Col(nil, vals)
			col, err := OpenU64Col(enc)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if col.Len() != len(vals) {
				t.Fatalf("len = %d, want %d", col.Len(), len(vals))
			}
			var got []uint64
			var buf []uint64
			for b := 0; b < col.NumBlocks(); b++ {
				buf = col.DecodeBlock(b, buf)
				got = append(got, buf...)
				mn, mx, _ := col.BlockRange(b)
				for _, v := range buf {
					if v < mn || v > mx {
						t.Fatalf("block %d: value %d outside zone map [%d,%d]", b, v, mn, mx)
					}
				}
			}
			if len(got) != len(vals) {
				t.Fatalf("decoded %d values, want %d", len(got), len(vals))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("value %d = %d, want %d", i, got[i], vals[i])
				}
			}
			// Point access agrees too.
			if len(vals) > 0 {
				for _, i := range []int{0, len(vals) / 2, len(vals) - 1} {
					v, _ := col.Value(i, nil)
					if v != vals[i] {
						t.Fatalf("Value(%d) = %d, want %d", i, v, vals[i])
					}
				}
			}
		})
	}
}

func TestPostingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := map[string][]int32{
		"single":      {0},
		"small":       {1, 5, 9, 4095},
		"chunk-edges": {65535, 65536, 131071, 131072},
		"dense":       seqI32(0, 70000),         // forces bitmap containers
		"sparse-wide": sparse(rng, 5000, 1<<24), // array containers across many chunks
		"mixed":       append(seqI32(65536, 70000), sparse(rng, 300, 1<<22)...),
	}
	for name, rows := range cases {
		rows := append([]int32(nil), rows...)
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		rows = dedupI32(rows)
		t.Run(name, func(t *testing.T) {
			enc := AppendPostings(nil, rows)
			got, err := DecodePostings(enc, len(rows), nil)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(rows) {
				t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
			}
			for i := range rows {
				if got[i] != rows[i] {
					t.Fatalf("row %d = %d, want %d", i, got[i], rows[i])
				}
			}
		})
	}
}

func TestDictRoundTripAndOrder(t *testing.T) {
	terms := testTerms(777)
	blob, offs := AppendDictBlocks(nil, terms)
	if len(offs) != (len(terms)+DictBlockSize-1)/DictBlockSize+1 {
		t.Fatalf("offset count %d", len(offs))
	}
	var got []rdf.Term
	var buf []rdf.Term
	for b := 0; b+1 < len(offs); b++ {
		count := DictBlockSize
		if b == len(offs)-2 {
			count = len(terms) - b*DictBlockSize
		}
		var err error
		buf, err = DecodeDictBlock(blob[offs[b]:offs[b+1]], count, buf)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		got = append(got, buf...)
	}
	if len(got) != len(terms) {
		t.Fatalf("decoded %d terms, want %d", len(got), len(terms))
	}
	for i := range terms {
		if got[i] != terms[i] {
			t.Fatalf("term %d = %+v, want %+v", i, got[i], terms[i])
		}
	}
	// CompareTerms must be a strict total order over distinct terms.
	for i := 0; i < 200; i++ {
		a, b := terms[i%len(terms)], terms[(i*13+5)%len(terms)]
		if (CompareTerms(a, b) == 0) != (a == b) {
			t.Fatalf("CompareTerms not consistent with equality for %+v vs %+v", a, b)
		}
		if CompareTerms(a, b) != -CompareTerms(b, a) {
			t.Fatalf("CompareTerms not antisymmetric for %+v vs %+v", a, b)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := testSnapshotData(t, 10_000)
	path := filepath.Join(t.TempDir(), "snap.packed")
	writeFile(t, path, d)
	r, err := Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer r.Close()
	if r.Seq() != d.Seq || r.Version() != d.Version {
		t.Fatalf("seq/version = %d/%d, want %d/%d", r.Seq(), r.Version(), d.Seq, d.Version)
	}
	if r.NRows() != len(d.S) || r.NTerms() != len(d.Terms) || r.NGeoms() != len(d.GeomIDs) {
		t.Fatalf("meta mismatch: rows=%d terms=%d geoms=%d", r.NRows(), r.NTerms(), r.NGeoms())
	}
	// Columns decode back exactly.
	for comp, want := range [3][]uint64{d.S, d.P, d.O} {
		col := r.Col(comp)
		var buf []uint64
		for b := 0; b < col.NumBlocks(); b++ {
			buf = col.DecodeBlock(b, buf)
			for i, v := range buf {
				if v != want[b*BlockSize+i] {
					t.Fatalf("col %d row %d = %d, want %d", comp, b*BlockSize+i, v, want[b*BlockSize+i])
				}
			}
		}
	}
	// Postings round-trip through offset/count columns.
	var offBuf, cntBuf []uint64
	for comp := 0; comp < 3; comp++ {
		for id := uint64(1); id <= uint64(len(d.Terms)); id += 97 {
			i := int(id - 1)
			var start, end, cnt uint64
			start, offBuf = r.PostOff(comp).Value(i, offBuf)
			end, offBuf = r.PostOff(comp).Value(i+1, offBuf)
			cnt, cntBuf = r.PostCnt(comp).Value(i, cntBuf)
			want := d.Postings(comp, id)
			if int(cnt) != len(want) {
				t.Fatalf("comp %d id %d: count %d, want %d", comp, id, cnt, len(want))
			}
			if cnt == 0 {
				continue
			}
			got, err := DecodePostings(r.PostingData(comp, start, end), int(cnt), nil)
			if err != nil {
				t.Fatalf("comp %d id %d: %v", comp, id, err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("comp %d id %d row %d = %d, want %d", comp, id, k, got[k], want[k])
				}
			}
		}
	}
	// Dictionary terms and sorted permutation.
	var dofs []uint64
	for b := 0; b <= r.NDictBlocks(); b++ {
		v, _ := r.DictOff().Value(b, nil)
		dofs = append(dofs, v)
	}
	var terms []rdf.Term
	var tbuf []rdf.Term
	for b := 0; b < r.NDictBlocks(); b++ {
		count := DictBlockSize
		if b == r.NDictBlocks()-1 {
			count = len(d.Terms) - b*DictBlockSize
		}
		var err error
		tbuf, err = DecodeDictBlock(r.DictBlockData(dofs[b], dofs[b+1]), count, tbuf)
		if err != nil {
			t.Fatalf("dict block %d: %v", b, err)
		}
		terms = append(terms, tbuf...)
	}
	for i := range d.Terms {
		if terms[i] != d.Terms[i] {
			t.Fatalf("term %d mismatch", i)
		}
	}
	var prev rdf.Term
	for i := 0; i < r.Perm().Len(); i++ {
		id, _ := r.Perm().Value(i, nil)
		cur := terms[id-1]
		if i > 0 && CompareTerms(prev, cur) >= 0 {
			t.Fatalf("permutation not strictly sorted at %d", i)
		}
		prev = cur
	}
	// Geometry ids/envelopes and stats.
	for i := 0; i < r.NGeoms(); i++ {
		id, _ := r.GeomIDs().Value(i, nil)
		if id != d.GeomIDs[i] {
			t.Fatalf("geom id %d = %d, want %d", i, id, d.GeomIDs[i])
		}
		if r.GeomEnv(i) != d.GeomEnvs[i] {
			t.Fatalf("geom env %d mismatch", i)
		}
	}
	if got := r.Stats(); got.Triples != d.Stats.Triples || len(got.Pred) != len(d.Stats.Pred) {
		t.Fatalf("stats mismatch: %+v", got)
	}
	if seq, err := Verify(path); err != nil || seq != d.Seq {
		t.Fatalf("Verify = %d, %v", seq, err)
	}
}

// TestOpenRejectsCorruption flips or truncates bytes across the file
// and asserts Open refuses every mutant — the property recovery's
// fall-back-to-previous-generation depends on.
func TestOpenRejectsCorruption(t *testing.T) {
	d := testSnapshotData(t, 5_000)
	path := filepath.Join(t.TempDir(), "snap.packed")
	writeFile(t, path, d)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err != nil {
		t.Fatalf("pristine file must open: %v", err)
	}
	// Every byte position class: header, early/mid/late sections,
	// footer body, footer trailer, trailing magic.
	positions := []int{0, 9, 40, len(orig) / 4, len(orig) / 2, 3 * len(orig) / 4, len(orig) - 30, len(orig) - 10, len(orig) - 1}
	for _, pos := range positions {
		mutant := append([]byte(nil), orig...)
		mutant[pos] ^= 0x40
		p := filepath.Join(t.TempDir(), "mutant.packed")
		if err := os.WriteFile(p, mutant, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(p); err == nil {
			r.Close()
			t.Fatalf("flip at %d: Open accepted corrupt file", pos)
		}
	}
	for _, cut := range []int{1, 8, 16, len(orig) / 2, len(orig) - 24} {
		p := filepath.Join(t.TempDir(), "trunc.packed")
		if err := os.WriteFile(p, orig[:len(orig)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(p); err == nil {
			r.Close()
			t.Fatalf("truncation by %d: Open accepted", cut)
		}
	}
}

// --- helpers -----------------------------------------------------------

func seq(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

func seqI32(lo, hi int) []int32 {
	out := make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, int32(i))
	}
	return out
}

func randU64(rng *rand.Rand, n int, span uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() % span
	}
	return out
}

func sparse(rng *rand.Rand, n int, span int64) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Int63n(span))
	}
	return out
}

func dedupI32(rows []int32) []int32 {
	out := rows[:0]
	for i, r := range rows {
		if i == 0 || r != rows[i-1] {
			out = append(out, r)
		}
	}
	return out
}

func testTerms(n int) []rdf.Term {
	terms := make([]rdf.Term, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			terms = append(terms, rdf.Term{Kind: rdf.KindIRI, Value: fmt.Sprintf("http://teleios.example/entity/%06d", i)})
		case 1:
			terms = append(terms, rdf.Term{Kind: rdf.KindLiteral, Value: fmt.Sprintf("label %d", i)})
		case 2:
			terms = append(terms, rdf.Term{Kind: rdf.KindLiteral, Value: fmt.Sprintf("%d.5", i), Datatype: "http://www.w3.org/2001/XMLSchema#double"})
		default:
			terms = append(terms, rdf.Term{Kind: rdf.KindLiteral, Value: fmt.Sprintf("nom %d", i), Lang: "fr"})
		}
	}
	return terms
}

// testSnapshotData builds a plausible snapshot: nRows triples over a
// skewed term distribution with sorted posting lists derived from the
// columns themselves.
func testSnapshotData(t testing.TB, nRows int) *SnapshotData {
	rng := rand.New(rand.NewSource(int64(nRows)))
	nTerms := nRows/3 + 50
	terms := testTerms(nTerms)
	d := &SnapshotData{
		Seq:     123,
		Version: 456,
		S:       make([]uint64, nRows),
		P:       make([]uint64, nRows),
		O:       make([]uint64, nRows),
		Terms:   terms,
	}
	for i := 0; i < nRows; i++ {
		d.S[i] = uint64(rng.Intn(nTerms)) + 1
		d.P[i] = uint64(rng.Intn(20)) + 1 // few predicates, long lists
		d.O[i] = uint64(rng.Intn(nTerms)) + 1
	}
	post := make([]map[uint64][]int32, 3)
	for comp, col := range [3][]uint64{d.S, d.P, d.O} {
		post[comp] = map[uint64][]int32{}
		for row, id := range col {
			post[comp][id] = append(post[comp][id], int32(row))
		}
	}
	d.Postings = func(comp int, id uint64) []int32 { return post[comp][id] }
	for i := 0; i < 40; i++ {
		id := uint64(i*7) + 1
		d.GeomIDs = append(d.GeomIDs, id)
		x, y := float64(i), float64(i*2)
		d.GeomEnvs = append(d.GeomEnvs, geo.Envelope{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1})
	}
	d.Stats = StatsBlock{
		Triples: nRows, DistinctS: len(post[0]), DistinctP: len(post[1]), DistinctO: len(post[2]),
		Geoms: len(d.GeomIDs),
		Pred:  []PredStat{{ID: 1, Count: 100, DistinctS: 10, DistinctO: 20}},
	}
	return d
}

func writeFile(t testing.TB, path string, d *SnapshotData) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}
