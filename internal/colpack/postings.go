package colpack

import (
	"fmt"
	"math/bits"
)

// Posting lists — the per-term row-id lists behind MatchRows — are
// stored roaring-style: a sorted []int32 is split into containers by
// the high 16 bits of the row id (keys are therefore ascending, the
// delta encoding of the chunk space), and each container stores the
// low 16 bits either as a sorted u16 array (sparse) or as an 8 KiB
// bitmap (dense):
//
//	2 bytes  key — row id high 16 bits
//	2 bytes  card-1 — container cardinality minus one (1…65536)
//	…        card <= arrayCutoff: card * u16 sorted low bits
//	         otherwise:           8192-byte bitmap
//
// Containers abut with no count prefix: the decoder knows the total
// cardinality from the snapshot's posting-count column and consumes
// containers until it is reached.

const (
	arrayCutoff  = 4096
	bitmapBytes  = 8192
	containerHdr = 4
)

// AppendPostings encodes a sorted, non-empty row list and appends the
// encoding to dst.
func AppendPostings(dst []byte, rows []int32) []byte {
	i := 0
	for i < len(rows) {
		key := uint32(rows[i]) >> 16
		j := i
		for j < len(rows) && uint32(rows[j])>>16 == key {
			j++
		}
		card := j - i
		dst = append(dst, byte(key), byte(key>>8), byte(card-1), byte((card-1)>>8))
		if card <= arrayCutoff {
			for _, r := range rows[i:j] {
				lo := uint16(uint32(r))
				dst = append(dst, byte(lo), byte(lo>>8))
			}
		} else {
			start := len(dst)
			for k := 0; k < bitmapBytes; k++ {
				dst = append(dst, 0)
			}
			bm := dst[start:]
			for _, r := range rows[i:j] {
				lo := uint32(r) & 0xffff
				bm[lo>>3] |= 1 << (lo & 7)
			}
		}
		i = j
	}
	return dst
}

// DecodePostings decodes count row ids from data (the byte range one
// term's containers occupy) into out, which is grown as needed and
// returned. It fails on malformed container headers rather than read
// outside data — the backstop behind the whole-file CRC.
func DecodePostings(data []byte, count int, out []int32) ([]int32, error) {
	if cap(out) < count {
		out = make([]int32, 0, count)
	}
	out = out[:0]
	for len(out) < count {
		if len(data) < containerHdr {
			return nil, fmt.Errorf("colpack: postings: truncated container header (%d rows missing)", count-len(out))
		}
		key := uint32(data[0]) | uint32(data[1])<<8
		card := int(uint32(data[2])|uint32(data[3])<<8) + 1
		data = data[containerHdr:]
		hi := int32(key << 16)
		if card > count-len(out) {
			return nil, fmt.Errorf("colpack: postings: container cardinality %d exceeds remaining count %d", card, count-len(out))
		}
		if card <= arrayCutoff {
			if len(data) < 2*card {
				return nil, fmt.Errorf("colpack: postings: truncated array container")
			}
			for k := 0; k < card; k++ {
				lo := uint32(data[2*k]) | uint32(data[2*k+1])<<8
				out = append(out, hi|int32(lo))
			}
			data = data[2*card:]
		} else {
			if len(data) < bitmapBytes {
				return nil, fmt.Errorf("colpack: postings: truncated bitmap container")
			}
			found := 0
			for w := 0; w < bitmapBytes; w += 8 {
				word := le64(data[w:])
				for word != 0 {
					bit := bits.TrailingZeros64(word)
					out = append(out, hi|int32(w<<3+bit))
					word &= word - 1
					found++
				}
			}
			if found != card {
				return nil, fmt.Errorf("colpack: postings: bitmap cardinality %d != header %d", found, card)
			}
			data = data[bitmapBytes:]
		}
	}
	return out, nil
}
