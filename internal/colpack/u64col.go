package colpack

import "fmt"

// U64Col is a frame-of-reference + bit-packed uint64 column: values
// are split into blocks of BlockSize, and each block stores
// (v - blockMin) in the minimum uniform bit width. The per-block
// min/max pair doubles as the zone map. The encoded layout is
// self-contained (one byte slice), so a column can live as one section
// of a snapshot file and be decoded block-at-a-time straight off the
// mapping:
//
//	8  bytes  n — value count
//	4  bytes  nBlocks
//	32 bytes  per block: off u64 (into the data area), min u64,
//	          max u64, width u32 (bits per value), count u32
//	…         data area: ceil(count*width/64)*8 bytes per block
type U64Col struct {
	n      int
	idx    []byte // block index region (32 bytes per block)
	data   []byte // packed block payloads
	blocks int
}

const u64ColIdxEntry = 32

// AppendU64Col encodes vals and appends the encoding to dst.
func AppendU64Col(dst []byte, vals []uint64) []byte {
	nBlocks := (len(vals) + BlockSize - 1) / BlockSize
	dst = appendU64(dst, uint64(len(vals)))
	dst = appendU32(dst, uint32(nBlocks))
	idxOff := len(dst)
	// Reserve the block index; filled as payloads are appended.
	for i := 0; i < nBlocks*u64ColIdxEntry; i++ {
		dst = append(dst, 0)
	}
	dataStart := len(dst)
	for b := 0; b < nBlocks; b++ {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > len(vals) {
			hi = len(vals)
		}
		blk := vals[lo:hi]
		minV, maxV := blk[0], blk[0]
		for _, v := range blk[1:] {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		width := bitWidth(maxV - minV)
		e := dst[idxOff+b*u64ColIdxEntry:]
		put64(e[0:], uint64(len(dst)-dataStart))
		put64(e[8:], minV)
		put64(e[16:], maxV)
		put32(e[24:], uint32(width))
		put32(e[28:], uint32(len(blk)))
		dst = appendPackedBits(dst, blk, minV, width)
	}
	return dst
}

// appendPackedBits packs (v-base) in width bits per value into
// little-endian u64 words appended to dst.
func appendPackedBits(dst []byte, vals []uint64, base uint64, width uint) []byte {
	if width == 0 {
		return dst
	}
	words := (len(vals)*int(width) + 63) / 64
	start := len(dst)
	for i := 0; i < words*8; i++ {
		dst = append(dst, 0)
	}
	out := dst[start:]
	bitPos := uint(0)
	for _, v := range vals {
		d := v - base
		word := bitPos >> 6
		off := bitPos & 63
		cur := le64(out[word*8:])
		put64(out[word*8:], cur|d<<off)
		if off+width > 64 {
			put64(out[(word+1)*8:], d>>(64-off))
		}
		bitPos += width
	}
	return dst
}

// OpenU64Col interprets data (one section of a mapped file) as an
// encoded column. The returned column references data; it copies
// nothing.
func OpenU64Col(data []byte) (*U64Col, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("colpack: u64 column: short header (%d bytes)", len(data))
	}
	n := le64(data)
	// Constant blocks pack to zero payload bytes, so n is bounded by
	// the block index the section can hold, not by the data volume.
	nBlocks64 := (n + BlockSize - 1) / BlockSize
	if nBlocks64 > uint64(len(data))/u64ColIdxEntry+1 || uint64(le32(data[8:])) != nBlocks64 {
		return nil, fmt.Errorf("colpack: u64 column: implausible header n=%d blocks=%d", n, le32(data[8:]))
	}
	nBlocks := int(nBlocks64)
	idxEnd := 12 + nBlocks*u64ColIdxEntry
	if idxEnd > len(data) {
		return nil, fmt.Errorf("colpack: u64 column: truncated block index")
	}
	c := &U64Col{n: int(n), idx: data[12:idxEnd], data: data[idxEnd:], blocks: nBlocks}
	// Validate every block descriptor up front so DecodeBlock never
	// reads outside the section.
	for b := 0; b < nBlocks; b++ {
		off, _, _, width, count := c.block(b)
		want := BlockSize
		if b == nBlocks-1 {
			want = c.n - b*BlockSize
		}
		if int(count) != want || width > 64 {
			return nil, fmt.Errorf("colpack: u64 column: block %d: bad descriptor (count=%d width=%d)", b, count, width)
		}
		if off > uint64(len(c.data)) {
			return nil, fmt.Errorf("colpack: u64 column: block %d: offset outside section", b)
		}
		end := off + uint64((int(count)*int(width)+63)/64*8)
		if end > uint64(len(c.data)) {
			return nil, fmt.Errorf("colpack: u64 column: block %d: payload outside section", b)
		}
	}
	return c, nil
}

func (c *U64Col) block(b int) (off, minV, maxV uint64, width uint, count uint32) {
	e := c.idx[b*u64ColIdxEntry:]
	return le64(e), le64(e[8:]), le64(e[16:]), uint(le32(e[24:])), le32(e[28:])
}

// Len reports the number of values in the column.
func (c *U64Col) Len() int { return c.n }

// NumBlocks reports the number of blocks.
func (c *U64Col) NumBlocks() int { return c.blocks }

// BlockRange returns block b's zone map (min and max value) and count.
func (c *U64Col) BlockRange(b int) (minV, maxV uint64, count int) {
	_, mn, mx, _, cnt := c.block(b)
	return mn, mx, int(cnt)
}

// DecodeBlock decodes block b into out (grown as needed) and returns
// the filled slice. One call is the column's unit of IO: it touches
// only that block's packed words of the mapping.
func (c *U64Col) DecodeBlock(b int, out []uint64) []uint64 {
	off, base, _, width, count := c.block(b)
	n := int(count)
	if cap(out) < n {
		out = make([]uint64, n)
	}
	out = out[:n]
	if width == 0 {
		for i := range out {
			out[i] = base
		}
		return out
	}
	src := c.data[off:]
	mask := ^uint64(0) >> (64 - width)
	bitPos := uint(0)
	for i := 0; i < n; i++ {
		word := bitPos >> 6
		sh := bitPos & 63
		v := le64(src[word*8:]) >> sh
		if sh+width > 64 {
			v |= le64(src[(word+1)*8:]) << (64 - sh)
		}
		out[i] = base + (v & mask)
		bitPos += width
	}
	return out
}

// Value decodes the single value at position i (decoding its whole
// block into scratch, which is grown as needed and returned). Callers
// that read more than a handful of values should cache decoded blocks
// instead — see internal/strabon's mapped snapshot.
func (c *U64Col) Value(i int, scratch []uint64) (uint64, []uint64) {
	scratch = c.DecodeBlock(i/BlockSize, scratch)
	return scratch[i%BlockSize], scratch
}
