package colpack

import (
	"encoding/binary"
	"sort"
	"testing"

	"repro/internal/rdf"
)

// Fuzz targets over the three encoders: arbitrary inputs must survive
// an encode→decode round trip bit-identically, and the decoders must
// never read outside their input or panic. Seeds run under plain
// `go test`; `go test -fuzz=FuzzU64Col ./internal/colpack/` explores.

func FuzzU64ColRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(make([]byte, 9*BlockSize))
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := make([]uint64, 0, len(raw)/3)
		for i := 0; i+1 < len(raw); i += 2 {
			// Mix widths: alternate narrow deltas and wide values.
			v := uint64(binary.LittleEndian.Uint16(raw[i:]))
			if v%3 == 0 {
				v = v<<48 | v
			}
			vals = append(vals, v)
		}
		enc := AppendU64Col(nil, vals)
		col, err := OpenU64Col(enc)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		var buf []uint64
		for b := 0; b < col.NumBlocks(); b++ {
			buf = col.DecodeBlock(b, buf)
			for i, v := range buf {
				if v != vals[b*BlockSize+i] {
					t.Fatalf("block %d value %d: %d != %d", b, i, v, vals[b*BlockSize+i])
				}
			}
		}
	})
}

func FuzzU64ColOpenHostile(f *testing.F) {
	f.Add(AppendU64Col(nil, []uint64{1, 99, 3}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Open on arbitrary bytes must either reject or yield a column
		// whose every block decodes in-bounds (no panic = pass).
		col, err := OpenU64Col(raw)
		if err != nil {
			return
		}
		var buf []uint64
		for b := 0; b < col.NumBlocks(); b++ {
			buf = col.DecodeBlock(b, buf)
		}
	})
}

func FuzzPostingsRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add(make([]byte, 3000))
	f.Fuzz(func(t *testing.T, raw []byte) {
		rows := make([]int32, 0, len(raw)/2)
		acc := int32(0)
		for i := 0; i+1 < len(raw); i += 2 {
			acc += int32(binary.LittleEndian.Uint16(raw[i:]))%997 + 1
			rows = append(rows, acc)
		}
		enc := AppendPostings(nil, rows)
		got, err := DecodePostings(enc, len(rows), nil)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		for i := range rows {
			if got[i] != rows[i] {
				t.Fatalf("row %d: %d != %d", i, got[i], rows[i])
			}
		}
	})
}

func FuzzPostingsDecodeHostile(f *testing.F) {
	f.Add(AppendPostings(nil, []int32{5, 70000}), 2)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 9)
	f.Fuzz(func(t *testing.T, raw []byte, count int) {
		if count < 0 || count > 1<<20 {
			return
		}
		// Must error or succeed without reading outside raw.
		DecodePostings(raw, count, nil)
	})
}

func FuzzDictRoundTrip(f *testing.F) {
	f.Add([]byte("http://example.org/a\x00http://example.org/b"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Carve raw into term fields; duplicates are fine for the
		// encoder (only the store guarantees uniqueness).
		fields := splitFuzz(raw)
		terms := make([]rdf.Term, 0, len(fields))
		for i, v := range fields {
			terms = append(terms, rdf.Term{Kind: rdf.TermKind(i%3 + 1), Value: v, Lang: fields[(i+1)%len(fields)]})
		}
		blob, offs := AppendDictBlocks(nil, terms)
		var buf []rdf.Term
		for b := 0; b+1 < len(offs); b++ {
			count := DictBlockSize
			if b == len(offs)-2 {
				count = len(terms) - b*DictBlockSize
			}
			var err error
			buf, err = DecodeDictBlock(blob[offs[b]:offs[b+1]], count, buf)
			if err != nil {
				t.Fatalf("own encoding rejected: %v", err)
			}
			for i := range buf {
				if buf[i] != terms[b*DictBlockSize+i] {
					t.Fatalf("term %d mismatch", b*DictBlockSize+i)
				}
			}
		}
		// The permutation sort must agree with CompareTerms.
		ids := make([]uint64, len(terms))
		for i := range ids {
			ids[i] = uint64(i + 1)
		}
		sortPerm(ids, terms)
		if !sort.SliceIsSorted(ids, func(i, j int) bool {
			return CompareTerms(terms[ids[i]-1], terms[ids[j]-1]) < 0 ||
				(CompareTerms(terms[ids[i]-1], terms[ids[j]-1]) == 0 && ids[i] < ids[j])
		}) {
			// Equal terms may order either way; only verify non-descending.
			for i := 1; i < len(ids); i++ {
				if CompareTerms(terms[ids[i-1]-1], terms[ids[i]-1]) > 0 {
					t.Fatalf("permutation descends at %d", i)
				}
			}
		}
	})
}

func FuzzDictDecodeHostile(f *testing.F) {
	blob, _ := AppendDictBlocks(nil, testTerms(70))
	f.Add(blob, 64)
	f.Add([]byte{0x80}, 1)
	f.Fuzz(func(t *testing.T, raw []byte, count int) {
		if count < 0 || count > DictBlockSize {
			return
		}
		DecodeDictBlock(raw, count, nil)
	})
}

func splitFuzz(raw []byte) []string {
	var out []string
	start := 0
	for i, b := range raw {
		if b == 0 {
			out = append(out, string(raw[start:i]))
			start = i + 1
		}
	}
	out = append(out, string(raw[start:]))
	return out
}
