// Package analysistest runs a lint.Analyzer over golden fixture
// packages under testdata/src and checks its diagnostics against
// `// want "regexp"` comments in the fixture sources — the same
// contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the stdlib-only framework in internal/lint.
//
// A fixture package lives at testdata/src/<importpath>/ relative to
// the calling test's directory. Fixtures may import each other and any
// real module or stdlib package; a fixture whose import path collides
// with a real package (e.g. repro/internal/persist) shadows it, which
// is how path-scoped analyzers are exercised without touching real
// code.
//
// Each `// want` comment anchors to the line it appears on and may
// carry several quoted regexps, each of which must match a distinct
// diagnostic on that line. Unmatched expectations and unexpected
// diagnostics both fail the test. Because the harness drives
// lint.Check, `//lint:allow` suppression is live in fixtures: a
// suppressed line simply carries no want comment.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/lint"
)

// Run loads the fixture packages named by pkgPaths, applies analyzer a
// (through lint.Check, so suppression directives are honored), and
// compares the diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := lint.LoadFixture(fset, filepath.Join("testdata", "src"), pkgPaths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := lint.Check(pkgs, []*lint.Analyzer{a}, lint.CheckOptions{})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, pkgs)
	used := make([]bool, len(diags))
	for _, w := range wants {
		if !w.claim(diags, used) {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("%s: unexpected diagnostic: %s: %s", posKey(d.Position), d.Analyzer, d.Message)
		}
	}
}

// want is one expectation: a regexp that must match a diagnostic
// reported on (file, line).
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func (w *want) claim(diags []lint.Diagnostic, used []bool) bool {
	for i, d := range diags {
		if used[i] || d.Position.Filename != w.file || d.Position.Line != w.line {
			continue
		}
		if w.re.MatchString(d.Message) {
			used[i] = true
			return true
		}
	}
	return false
}

// wantRe matches the expectation marker; quoted regexps follow.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")
)

// collectWants scans every fixture comment for want markers.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWant(t, fset, c)...)
				}
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []*want {
	t.Helper()
	m := wantRe.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := fset.Position(c.Pos())
	quoted := quotedRe.FindAllString(m[1], -1)
	if len(quoted) == 0 {
		t.Errorf("%s:%d: malformed want comment %q: no quoted regexp", pos.Filename, pos.Line, c.Text)
		return nil
	}
	var wants []*want
	for _, q := range quoted {
		var src string
		if q[0] == '`' {
			src = q[1 : len(q)-1]
		} else {
			var err error
			if src, err = strconv.Unquote(q); err != nil {
				t.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
				continue
			}
		}
		re, err := regexp.Compile(src)
		if err != nil {
			t.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
			continue
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
	}
	return wants
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
