// Package lint is the project-invariant analyzer suite: a set of
// static checks that mechanically enforce the disciplines the previous
// PRs established by convention — ...Locked methods called only under
// the store mutex (lockcheck), durable writes routed through
// internal/fsx (fsxcheck), operator loops honouring context
// cancellation (ctxcheck), failpoint names matching the documented
// matrix (failpointcheck), and no dropped errors on durability paths
// (errdropcheck).
//
// The vocabulary deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, the analysistest golden-file harness)
// so the suite can migrate to the real framework wholesale if the
// dependency ever becomes available; this build environment has no
// module proxy access, so the driver layer — package loading from
// `go list -export` gc export data, the `go vet -vettool` unitchecker
// protocol, and the //lint:allow suppression directive — is
// implemented here on the standard library alone.
//
// # Suppression directives
//
// A diagnostic is suppressed by a directive comment on the same line,
// or on the line immediately above the flagged one:
//
//	//lint:allow fsxcheck(WAL segments are append-only; rename cannot apply)
//
// The reason inside the parentheses is mandatory: a directive without
// one is itself reported. Directives name exactly one analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// directives. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by -help and
	// quoted in docs/static-analysis.md.
	Doc string

	// Run performs the per-package analysis, reporting findings
	// through pass.Reportf.
	Run func(pass *Pass) error

	// Finish, if non-nil, runs once after every package has been
	// analyzed, for whole-program invariants (failpointcheck's
	// orphaned-registration check). It only runs in standalone mode
	// over the full package pattern; the per-package `go vet
	// -vettool` protocol cannot see the whole program at once.
	Finish func(prog *Program, report func(pos token.Position, format string, args ...any))
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test files. Test files are
	// type-checked (the package would not compile without them in a
	// test variant) but never analyzed: chaos and corruption tests
	// intentionally violate the production disciplines.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Program accumulates cross-package state for Finish hooks.
	Program *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding, position already resolved.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	pos := d.Position.String()
	if !d.Position.IsValid() {
		pos = d.Position.Filename
		if pos == "" {
			pos = "-"
		}
	}
	return fmt.Sprintf("%s: %s: %s", pos, d.Analyzer, d.Message)
}

// A Program is the shared blackboard analyzers use to accumulate
// whole-program facts across packages for their Finish hook.
type Program struct {
	mu    sync.Mutex
	facts map[string]any
}

// Fact returns the fact stored under key, creating it with mk on first
// use. Callers own the returned value's interior synchronization; the
// driver runs packages sequentially, so none is needed in practice.
func (pr *Program) Fact(key string, mk func() any) any {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.facts == nil {
		pr.facts = map[string]any{}
	}
	v, ok := pr.facts[key]
	if !ok {
		v = mk()
		pr.facts[key] = v
	}
	return v
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Lockcheck, Fsxcheck, Ctxcheck, Failpointcheck, Errdropcheck}
}

// CheckOptions configures a driver run.
type CheckOptions struct {
	// WholeProgram enables Finish hooks; set it only when the package
	// set covers the entire module (otherwise failpointcheck would
	// report false orphans).
	WholeProgram bool
}

// Check runs the analyzers over the loaded packages, applies the
// //lint:allow suppression directives, and returns the surviving
// diagnostics sorted by position. Malformed directives (no reason, or
// an unknown analyzer name) are reported as findings themselves.
func Check(pkgs []*Package, analyzers []*Analyzer, opts CheckOptions) ([]Diagnostic, error) {
	prog := &Program{}
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	dirs := directiveIndex{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			dirs.addFile(pkg.Fset, f, known, collect)
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Program:  prog,
				report:   collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	if opts.WholeProgram {
		for _, a := range analyzers {
			if a.Finish == nil {
				continue
			}
			name := a.Name
			a.Finish(prog, func(pos token.Position, format string, args ...any) {
				collect(Diagnostic{Analyzer: name, Position: pos, Message: fmt.Sprintf(format, args...)})
			})
		}
	}

	kept := dirs.filter(diags)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Position, kept[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// directiveRe matches //lint:allow analyzer(reason). The reason group
// is everything between the outermost parens.
var directiveRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_]+)\((.*)\)\s*$`)

// A directive suppresses one analyzer on one line (and the line below,
// so a directive can sit on its own line above the flagged statement).
type directive struct {
	analyzer string
	line     int
}

type directiveIndex map[string][]directive // filename -> directives

// addFile parses every comment in f, indexing well-formed directives
// and reporting malformed ones through report.
func (di directiveIndex) addFile(fset *token.FileSet, f *ast.File, known map[string]bool, report func(Diagnostic)) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//lint:") {
				continue
			}
			pos := fset.Position(c.Pos())
			m := directiveRe.FindStringSubmatch(text)
			if m == nil {
				report(Diagnostic{Analyzer: "lintdirective", Position: pos,
					Message: "malformed directive; want //lint:allow analyzer(reason)"})
				continue
			}
			name, reason := m[1], strings.TrimSpace(m[2])
			if !known[name] {
				report(Diagnostic{Analyzer: "lintdirective", Position: pos,
					Message: fmt.Sprintf("directive names unknown analyzer %q", name)})
				continue
			}
			if reason == "" {
				report(Diagnostic{Analyzer: "lintdirective", Position: pos,
					Message: fmt.Sprintf("//lint:allow %s() needs a reason", name)})
				continue
			}
			di[pos.Filename] = append(di[pos.Filename], directive{analyzer: name, line: pos.Line})
		}
	}
}

// filter drops diagnostics covered by a directive on the same line or
// the line immediately above.
func (di directiveIndex) filter(diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		if d.Analyzer != "lintdirective" && di.covers(d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func (di directiveIndex) covers(d Diagnostic) bool {
	for _, dir := range di[d.Position.Filename] {
		if dir.analyzer != d.Analyzer {
			continue
		}
		if dir.line == d.Position.Line || dir.line == d.Position.Line-1 {
			return true
		}
	}
	return false
}
