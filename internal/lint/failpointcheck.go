package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
)

// Failpointcheck keeps the failpoint matrix honest in both directions
// (PR 8): every faults.Eval plant must name a string literal that is
// registered in the generated faults.Registry (which is itself
// generated from docs/operations.md's matrix), and — in whole-program
// mode — every registered name must be planted somewhere. An unknown
// name means an undocumented failpoint; an orphaned registration means
// documentation for a plant that no longer exists. Both fail the lint
// gate.
var Failpointcheck = &Analyzer{
	Name: "failpointcheck",
	Doc: "faults.Eval sites must use a string literal registered in the generated " +
		"faults.Registry (regenerate with `go generate ./internal/faults` after " +
		"editing docs/operations.md); whole-program runs also flag registered " +
		"names that are planted nowhere",
	Run:    runFailpointcheck,
	Finish: finishFailpointcheck,
}

const plantedFactKey = "failpointcheck.planted"

func plantedSet(prog *Program) map[string][]token.Position {
	return prog.Fact(plantedFactKey, func() any { return map[string][]token.Position{} }).(map[string][]token.Position)
}

func runFailpointcheck(pass *Pass) error {
	planted := plantedSet(pass.Program)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Name() != "Eval" || !strings.HasSuffix(funcPkgPath(fn), "internal/faults") {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Args[0].Pos(), "faults.Eval argument must be a string literal so the registry check can see it; dynamic names defeat the docs/operations.md matrix")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if _, ok := faults.Registry[name]; !ok {
				pass.Reportf(lit.Pos(), "failpoint %q is not in faults.Registry; document it in docs/operations.md's matrix and run `go generate ./internal/faults`",
					name)
				return true
			}
			planted[name] = append(planted[name], pass.Fset.Position(lit.Pos()))
			return true
		})
	}
	return nil
}

// finishFailpointcheck reports registered-but-unplanted names once the
// whole program has been scanned.
func finishFailpointcheck(prog *Program, report func(pos token.Position, format string, args ...any)) {
	planted := plantedSet(prog)
	for _, name := range registryNames() {
		if len(planted[name]) == 0 {
			report(token.Position{Filename: "internal/faults/registry.go"},
				"failpoint %q is registered (documented in docs/operations.md) but planted nowhere; remove the matrix row and regenerate, or restore the faults.Eval site", name)
		}
	}
}

func registryNames() []string {
	names := make([]string, 0, len(faults.Registry))
	for name := range faults.Registry {
		names = append(names, name)
	}
	// Stable output order for deterministic CI logs.
	sort.Strings(names)
	return names
}
