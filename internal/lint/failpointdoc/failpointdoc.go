// Package failpointdoc parses the failpoint matrix out of
// docs/operations.md. It is shared by the registry generator
// (internal/lint/genregistry, invoked via `go generate
// ./internal/faults`) and the registry consistency test, so the
// documentation table stays the single source of truth for failpoint
// names.
package failpointdoc

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// An Entry is one row of the matrix.
type Entry struct {
	Name  string // failpoint name ("wal/fsync")
	Site  string // where it is planted
	State string // the proven degraded state
}

// rowRe matches a matrix body row: | `name` | site | state |
var rowRe = regexp.MustCompile("^\\|\\s*`([^`]+)`\\s*\\|([^|]*)\\|([^|]*)\\|\\s*$")

// ParseMatrix extracts the "Failpoint matrix" table from the markdown
// file at path.
func ParseMatrix(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var entries []Entry
	inSection := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			inSection = strings.Contains(line, "Failpoint matrix")
			continue
		}
		if !inSection {
			continue
		}
		m := rowRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		entries = append(entries, Entry{
			Name:  strings.TrimSpace(m[1]),
			Site:  strings.TrimSpace(m[2]),
			State: strings.TrimSpace(m[3]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: no failpoint matrix rows found (section header or table format changed?)", path)
	}
	return entries, nil
}
