package lint

import (
	"go/ast"
	"go/types"
)

// ctxPackages are the query-execution packages where an unresponsive
// loop orphans a cancelled request: the stSPARQL executor, the SciQL
// executor, and the tile-parallel array kernels (PR 5 threaded
// context.Context end-to-end through all three).
var ctxPackages = []string{
	"repro/internal/stsparql",
	"repro/internal/sciql",
	"repro/internal/array",
}

// Ctxcheck enforces PR 5's cancellation discipline in the executor
// packages:
//
//  1. a function that accepts a context.Context must actually use it —
//     check ctx.Err()/ctx.Done(), pass it on, or store it for the
//     operators to poll; a parameter that is merely accepted silently
//     breaks every caller's deadline, and
//  2. an unbounded loop (for {...}) in a function that has a context
//     in scope — as a parameter or a receiver field — must reference
//     it somewhere in the loop body, so a row/morsel pump cannot spin
//     past cancellation.
var Ctxcheck = &Analyzer{
	Name: "ctxcheck",
	Doc: "executor entry points that accept a context.Context must propagate or " +
		"poll it, and unbounded loops with a ctx in scope must check it in the " +
		"loop body (cancellation responsiveness, PR 5)",
	Run: runCtxcheck,
}

func runCtxcheck(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), ctxPackages...) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxParams(pass, fd)
			checkUnboundedLoops(pass, fd)
		}
	}
	return nil
}

// ctxParams returns the objects of fd's context.Context parameters.
func ctxParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkCtxParams flags context parameters that are never used — or
// only ever discarded into the blank identifier.
func checkCtxParams(pass *Pass, fd *ast.FuncDecl) {
	for _, obj := range ctxParams(pass, fd) {
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if used {
				return false
			}
			id, ok := n.(*ast.Ident)
			if ok && pass.Info.Uses[id] == obj && !isBlankDiscard(fd.Body, id) {
				used = true
			}
			return true
		})
		if !used {
			pass.Reportf(fd.Name.Pos(), "%s accepts ctx but never checks or propagates it; callers' deadlines and cancellations are silently dropped",
				fd.Name.Name)
		}
	}
}

// isBlankDiscard reports whether id appears only as the RHS of an
// `_ = ctx` assignment (a lint-silencing discard, not a real use).
func isBlankDiscard(body *ast.BlockStmt, id *ast.Ident) bool {
	discard := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name != "_" {
			return true
		}
		if as.Rhs[0] == ast.Expr(id) {
			discard = true
			return false
		}
		return true
	})
	return discard
}

// checkUnboundedLoops flags `for { ... }` loops that never look at a
// reachable context. A context is reachable as a parameter object or
// as a context.Context field on the receiver (the vexec pattern:
// v.ctx).
func checkUnboundedLoops(pass *Pass, fd *ast.FuncDecl) {
	params := ctxParams(pass, fd)
	recvName := receiverName(fd)
	hasRecvCtx := recvName != "" && receiverHasCtxField(pass, fd)
	if len(params) == 0 && !hasRecvCtx {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if loopChecksCtx(pass, loop.Body, params, recvName, hasRecvCtx) {
			return true
		}
		pass.Reportf(loop.Pos(), "unbounded loop in %s never checks the in-scope context; poll ctx.Err() (or select on ctx.Done()) at iteration boundaries",
			fd.Name.Name)
		return true
	})
}

// receiverHasCtxField reports whether fd's receiver struct has a
// context.Context field.
func receiverHasCtxField(pass *Pass, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.Info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// loopChecksCtx reports whether body references a context parameter or
// a receiver ctx field.
func loopChecksCtx(pass *Pass, body *ast.BlockStmt, params []types.Object, recvName string, hasRecvCtx bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			for _, p := range params {
				if obj == p {
					found = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if hasRecvCtx {
				if base, ok := ast.Unparen(x.X).(*ast.Ident); ok && base.Name == recvName && isContextType(pass.Info.TypeOf(x)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
