package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Lockcheck enforces the ...Locked naming contract established in the
// strabon store (PR 2/4/7): a function whose name ends in "Locked"
// documents that its receiver's mutex is held on entry, so it may only
// be called (a) from another ...Locked function, or (b) lexically
// inside a critical section opened by a .Lock()/.RLock() on a mutex
// rooted at the same receiver. It also flags a ...Locked function that
// acquires its own receiver's mutex — the self-deadlock the suffix
// exists to prevent.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc: "calls to ...Locked functions must hold the receiver's mutex: " +
		"made from another ...Locked function or between mu.Lock()/Unlock() " +
		"(deferred unlocks keep the section open; an unlock inside a " +
		"returning branch does not close the fall-through path)",
	Run: runLockcheck,
}

func runLockcheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				checkLockedBody(pass, fd)
				continue
			}
			sim := &lockSim{pass: pass}
			sim.stmt(fd.Body, newLockState())
		}
	}
	return nil
}

// checkLockedBody flags a ...Locked function that locks the mutex it
// documents as already held.
func checkLockedBody(pass *Pass, fd *ast.FuncDecl) {
	recvName := receiverName(fd)
	if recvName == "" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure may legitimately run after release
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isMutexMethod(calleeFunc(pass.Info, call))
		if !ok || (name != "Lock" && name != "RLock") {
			return true
		}
		if root := recvRoot(call); strings.HasPrefix(root, recvName+".") {
			pass.Reportf(call.Pos(), "%s acquires %s inside %s, which documents the lock as already held (self-deadlock)",
				name, root, fd.Name.Name)
		}
		return true
	})
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// lockState is the set of mutex expressions ("st.mu", "e.planMu")
// currently held on the path being simulated.
type lockState struct {
	held map[string]bool
	// terminated marks a path that cannot fall through (return, panic,
	// os.Exit); terminated paths are excluded from branch merges.
	terminated bool
}

func newLockState() *lockState { return &lockState{held: map[string]bool{}} }

func (s *lockState) clone() *lockState {
	c := &lockState{held: make(map[string]bool, len(s.held)), terminated: s.terminated}
	for k := range s.held {
		c.held[k] = true
	}
	return c
}

// merge intersects the held sets of the non-terminated states; with no
// live state the result is terminated.
func mergeStates(states ...*lockState) *lockState {
	var live []*lockState
	for _, s := range states {
		if s != nil && !s.terminated {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		out := newLockState()
		out.terminated = true
		return out
	}
	out := newLockState()
	for k := range live[0].held {
		all := true
		for _, s := range live[1:] {
			if !s.held[k] {
				all = false
				break
			}
		}
		if all {
			out.held[k] = true
		}
	}
	return out
}

// lockSim walks a function body in execution order, tracking which
// mutexes are held, and reports ...Locked calls made with no
// compatible mutex held.
type lockSim struct {
	pass *Pass
}

// stmt simulates one statement, returning the fall-through state.
func (sim *lockSim) stmt(st ast.Stmt, in *lockState) *lockState {
	if st == nil || in.terminated {
		return in
	}
	switch s := st.(type) {
	case *ast.BlockStmt:
		cur := in
		for _, inner := range s.List {
			cur = sim.stmt(inner, cur)
		}
		return cur
	case *ast.ExprStmt:
		return sim.expr(s.X, in)
	case *ast.AssignStmt:
		cur := in
		for _, e := range s.Rhs {
			cur = sim.expr(e, cur)
		}
		for _, e := range s.Lhs {
			cur = sim.expr(e, cur)
		}
		return cur
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if ok {
			cur := in
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						cur = sim.expr(e, cur)
					}
				}
			}
			return cur
		}
		return in
	case *ast.ReturnStmt:
		cur := in
		for _, e := range s.Results {
			cur = sim.expr(e, cur)
		}
		out := cur.clone()
		out.terminated = true
		return out
	case *ast.BranchStmt: // break/continue/goto: treat as terminating this path
		out := in.clone()
		out.terminated = true
		return out
	case *ast.IfStmt:
		cur := sim.stmt(s.Init, in)
		cur = sim.expr(s.Cond, cur)
		thenOut := sim.stmt(s.Body, cur.clone())
		elseOut := cur.clone()
		if s.Else != nil {
			elseOut = sim.stmt(s.Else, cur.clone())
		}
		return mergeStates(thenOut, elseOut)
	case *ast.ForStmt:
		cur := sim.stmt(s.Init, in)
		cur = sim.expr(s.Cond, cur)
		bodyOut := sim.stmt(s.Body, cur.clone())
		sim.stmt(s.Post, bodyOut)
		// The loop may run zero times; fall-through keeps only locks
		// held both before and after the body.
		return mergeStates(cur, bodyOut)
	case *ast.RangeStmt:
		cur := sim.expr(s.X, in)
		bodyOut := sim.stmt(s.Body, cur.clone())
		return mergeStates(cur, bodyOut)
	case *ast.SwitchStmt:
		cur := sim.stmt(s.Init, in)
		cur = sim.expr(s.Tag, cur)
		return sim.caseBodies(s.Body, cur)
	case *ast.TypeSwitchStmt:
		cur := sim.stmt(s.Init, in)
		cur = sim.stmt(s.Assign, cur)
		return sim.caseBodies(s.Body, cur)
	case *ast.SelectStmt:
		return sim.caseBodies(s.Body, in)
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit: the section stays
		// open for the remainder of the body, so the call itself does
		// not change state. Other deferred calls (incl. closures) are
		// simulated for violations only, with the state at this point.
		if name, ok := isMutexMethod(calleeFunc(sim.pass.Info, s.Call)); ok && (name == "Unlock" || name == "RUnlock") {
			return in
		}
		for _, arg := range s.Call.Args {
			sim.expr(arg, in.clone())
		}
		sim.expr(s.Call.Fun, in.clone())
		return in
	case *ast.GoStmt:
		// A goroutine runs concurrently: simulate its body with no
		// locks held (the spawning section's locks are not its own).
		sim.expr(s.Call.Fun, newLockState())
		for _, arg := range s.Call.Args {
			sim.expr(arg, newLockState())
		}
		return in
	case *ast.LabeledStmt:
		return sim.stmt(s.Stmt, in)
	case *ast.IncDecStmt:
		return sim.expr(s.X, in)
	case *ast.SendStmt:
		cur := sim.expr(s.Chan, in)
		return sim.expr(s.Value, cur)
	default:
		return in
	}
}

func (sim *lockSim) caseBodies(body *ast.BlockStmt, in *lockState) *lockState {
	outs := []*lockState{in} // zero matching case / no default falls through
	for _, cc := range body.List {
		cur := in.clone()
		switch c := cc.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				cur = sim.expr(e, cur)
			}
			for _, st := range c.Body {
				cur = sim.stmt(st, cur)
			}
		case *ast.CommClause:
			cur = sim.stmt(c.Comm, cur)
			for _, st := range c.Body {
				cur = sim.stmt(st, cur)
			}
		}
		outs = append(outs, cur)
	}
	return mergeStates(outs...)
}

// expr simulates an expression, updating lock state for mutex calls
// and reporting ...Locked calls made without the lock.
func (sim *lockSim) expr(e ast.Expr, in *lockState) *lockState {
	if e == nil || in.terminated {
		return in
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		cur := in
		// Arguments evaluate before the call.
		for _, arg := range x.Args {
			cur = sim.expr(arg, cur)
		}
		fn := calleeFunc(sim.pass.Info, x)
		if name, ok := isMutexMethod(fn); ok {
			path := recvRoot(x)
			switch name {
			case "Lock", "RLock":
				cur = cur.clone()
				cur.held[path] = true
			case "Unlock", "RUnlock":
				cur = cur.clone()
				delete(cur.held, path)
			}
			return cur
		}
		if fn != nil && strings.HasSuffix(fn.Name(), "Locked") {
			sim.checkLockedCall(x, fn, cur)
		}
		// A panicking call terminates the path.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" && calleeFunc(sim.pass.Info, x) == nil {
			out := cur.clone()
			out.terminated = true
			return out
		}
		return sim.expr(x.Fun, cur)
	case *ast.FuncLit:
		// Assume synchronous execution at this point (sort.Slice,
		// cleanup closures): the body sees the current lock state.
		sim.stmt(x.Body, in.clone())
		return in
	case *ast.ParenExpr:
		return sim.expr(x.X, in)
	case *ast.SelectorExpr:
		return sim.expr(x.X, in)
	case *ast.UnaryExpr:
		return sim.expr(x.X, in)
	case *ast.BinaryExpr:
		cur := sim.expr(x.X, in)
		return sim.expr(x.Y, cur)
	case *ast.IndexExpr:
		cur := sim.expr(x.X, in)
		return sim.expr(x.Index, cur)
	case *ast.SliceExpr:
		cur := sim.expr(x.X, in)
		cur = sim.expr(x.Low, cur)
		cur = sim.expr(x.High, cur)
		return sim.expr(x.Max, cur)
	case *ast.StarExpr:
		return sim.expr(x.X, in)
	case *ast.TypeAssertExpr:
		return sim.expr(x.X, in)
	case *ast.CompositeLit:
		cur := in
		for _, elt := range x.Elts {
			cur = sim.expr(elt, cur)
		}
		return cur
	case *ast.KeyValueExpr:
		return sim.expr(x.Value, in)
	default:
		return in
	}
}

// checkLockedCall reports a ...Locked call whose receiver has no held
// mutex on the current path.
func (sim *lockSim) checkLockedCall(call *ast.CallExpr, fn *types.Func, st *lockState) {
	root := recvRoot(call)
	if root == "" {
		// Plain ...Locked function: any held mutex satisfies it.
		if len(st.held) == 0 {
			sim.pass.Reportf(call.Pos(), "call to %s with no mutex held; callers of ...Locked functions must hold the lock or be ...Locked themselves", fn.Name())
		}
		return
	}
	for path := range st.held {
		if strings.HasPrefix(path, root+".") || path == root {
			return
		}
	}
	sim.pass.Reportf(call.Pos(), "call to %s.%s outside a %s-rooted critical section; hold %s's mutex (Lock/RLock) or rename the caller ...Locked",
		root, fn.Name(), root, root)
}
