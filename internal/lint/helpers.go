package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil for indirect calls through variables, conversions,
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath reports the import path of the package declaring fn
// ("" for builtins/error.Error).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// pathIn reports whether pkgPath is exactly one of the given module
// paths OR a testdata fixture standing in for one (the analysistest
// harness loads fixtures under their real import paths, so exact
// matching covers both).
func pathIn(pkgPath string, paths ...string) bool {
	for _, p := range paths {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// lastResultIsError reports whether fn's final result is of type error.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// recvRoot returns the textual receiver expression of a method call
// ("st" for st.addLocked(), "v.store" for v.store.addLocked()), or ""
// for plain function calls.
func recvRoot(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return types.ExprString(sel.X)
}

// isMutexMethod reports whether fn is sync.Mutex/RWMutex/Locker
// Lock/RLock/Unlock/RUnlock, classifying acquire vs release.
func isMutexMethod(fn *types.Func) (name string, ok bool) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	tn := recv.Type().String()
	if !strings.HasSuffix(tn, "sync.Mutex") && !strings.HasSuffix(tn, "sync.RWMutex") && !strings.HasSuffix(tn, "sync.Locker") {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), true
	}
	return "", false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
