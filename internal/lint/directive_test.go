package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `package p

func f() {
	//lint:allow lockcheck()
	//lint:allow nosuch(the analyzer does not exist)
	//lint:allow fsxcheck(legacy append-only segment)
	//lint:allowbogus
}
`

func parseDirectives(t *testing.T) (directiveIndex, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	di := directiveIndex{}
	var diags []Diagnostic
	known := map[string]bool{"lockcheck": true, "fsxcheck": true}
	di.addFile(fset, f, known, func(d Diagnostic) { diags = append(diags, d) })
	return di, diags
}

func TestDirectiveMalformed(t *testing.T) {
	_, diags := parseDirectives(t)
	wantSubstr := map[int]string{
		4: "needs a reason",
		5: `unknown analyzer "nosuch"`,
		7: "malformed directive",
	}
	if len(diags) != len(wantSubstr) {
		t.Fatalf("got %d directive diagnostics, want %d: %v", len(diags), len(wantSubstr), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "lintdirective" {
			t.Errorf("line %d: analyzer %q, want lintdirective", d.Position.Line, d.Analyzer)
		}
		substr, ok := wantSubstr[d.Position.Line]
		if !ok {
			t.Errorf("unexpected diagnostic at line %d: %s", d.Position.Line, d.Message)
			continue
		}
		if !strings.Contains(d.Message, substr) {
			t.Errorf("line %d: message %q does not contain %q", d.Position.Line, d.Message, substr)
		}
	}
}

func TestDirectiveCoverage(t *testing.T) {
	di, _ := parseDirectives(t)
	diag := func(analyzer string, line int) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Position: token.Position{Filename: "p.go", Line: line}}
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{diag("fsxcheck", 6), true},  // same line as the directive
		{diag("fsxcheck", 7), true},  // line immediately below
		{diag("fsxcheck", 8), false}, // two lines below: out of range
		{diag("lockcheck", 6), false},
		{diag("fsxcheck", 4), false}, // the reasonless directive indexes nothing
	}
	for _, c := range cases {
		if got := di.covers(c.d); got != c.want {
			t.Errorf("covers(%s@%d) = %v, want %v", c.d.Analyzer, c.d.Position.Line, got, c.want)
		}
	}
}
