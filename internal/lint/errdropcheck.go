package lint

import (
	"go/ast"
	"go/types"
)

// errdropPackages are the packages where a silently dropped error from
// a durability call turns into acknowledged-write loss: the WAL and
// snapshot engine, the packed format writer, the fsx primitives, the
// store's legacy save path, replication's installs, and the raster and
// vault repositories.
var errdropPackages = []string{
	"repro/internal/persist",
	"repro/internal/colpack",
	"repro/internal/fsx",
	"repro/internal/strabon",
	"repro/internal/replication",
	"repro/internal/raster",
	"repro/internal/vault",
}

// alwaysFlagged are method names whose dropped error is flagged
// unconditionally in the durability packages: a failed Sync/Flush
// means the bytes may not be on disk, and a failed journal
// Append/AppendRecord means the WAL lost a record.
var alwaysFlagged = map[string]bool{
	"Sync":         true,
	"Flush":        true,
	"Append":       true,
	"AppendRecord": true,
}

// writeSet marks a receiver as being on a write path: if any of these
// methods is called on it anywhere in the enclosing function, dropping
// its Close error is flagged too (the close is what surfaces deferred
// write-back failures).
var writeSet = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "ReadFrom": true,
	"Sync": true, "Truncate": true, "Flush": true, "Append": true,
	"AppendRecord": true,
}

// Errdropcheck tightens go vet's unusedresult for the durability
// packages (PR 4): errors from Sync, Flush, and journal Append must
// never be dropped — not as a bare statement, not deferred, and not
// assigned to the blank identifier — and Close errors must be handled
// on write paths. A Close dropped immediately before returning an
// already-failed error (the cleanup idiom) is exempt; other deliberate
// drops carry a //lint:allow errdropcheck(reason) directive.
var Errdropcheck = &Analyzer{
	Name: "errdropcheck",
	Doc: "dropped error returns from Sync/Flush/Append/AppendRecord (always) and " +
		"from Close on write paths (receiver also written/synced in the same " +
		"function) in durability-critical packages; the cleanup idiom " +
		"`f.Close(); return err` is exempt",
	Run: runErrdropcheck,
}

func runErrdropcheck(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), errdropPackages...) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncDrops(pass, fd)
		}
	}
	return nil
}

// checkFuncDrops analyzes one function: first collect, per receiver
// expression, every method name called on it (the write-path
// evidence), then flag dropped durability errors.
func checkFuncDrops(pass *Pass, fd *ast.FuncDecl) {
	written := map[string]bool{} // receiver expr string -> write-path
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if writeSet[sel.Sel.Name] {
			written[types.ExprString(sel.X)] = true
		}
		return true
	})

	inspectBlock := func(list []ast.Stmt) {
		for i, st := range list {
			switch s := st.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, written, followedByErrReturn(pass, list, i))
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, s.Call, written, false)
			case *ast.GoStmt:
				checkDroppedCall(pass, s.Call, written, false)
			case *ast.AssignStmt:
				checkBlankAssign(pass, s, written)
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			inspectBlock(b.List)
		case *ast.CaseClause:
			inspectBlock(b.Body)
		case *ast.CommClause:
			inspectBlock(b.Body)
		}
		return true
	})
}

// followedByErrReturn reports whether the statement after index i in
// list is a return whose results include an error-typed expression —
// the `f.Close(); return ..., err` cleanup idiom on an already-failing
// path, where the close error would mask the root cause.
func followedByErrReturn(pass *Pass, list []ast.Stmt, i int) bool {
	if i+1 >= len(list) {
		return false
	}
	ret, ok := list[i+1].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		t := pass.Info.TypeOf(res)
		if t == nil {
			continue
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			// `return err` forwards a real failure; `return nil` does not.
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			return true
		}
	}
	return false
}

// checkDroppedCall flags a statement-position call (plain, deferred,
// or go'd) that discards a durability error.
func checkDroppedCall(pass *Pass, call *ast.CallExpr, written map[string]bool, cleanupBeforeErrReturn bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil || !lastResultIsError(fn) {
		return
	}
	name := fn.Name()
	recv := recvRoot(call)
	switch {
	case alwaysFlagged[name]:
		pass.Reportf(call.Pos(), "%s.%s error dropped; a failed %s on a durability path can lose acknowledged writes — handle it or annotate //lint:allow errdropcheck(reason)",
			recv, name, name)
	case name == "Close" && written[recv]:
		if cleanupBeforeErrReturn {
			return // cleanup on an already-failing path
		}
		pass.Reportf(call.Pos(), "%s.Close error dropped on a write path (%s is written/synced in this function); Close is where write-back failures surface — handle it or annotate //lint:allow errdropcheck(reason)",
			recv, recv)
	}
}

// checkBlankAssign flags `_ = f.Sync()` style discards, including a
// blank in the error slot of a multi-assign from a durability call.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt, written map[string]bool) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil || !lastResultIsError(fn) {
		return
	}
	name := fn.Name()
	recv := recvRoot(call)
	interesting := alwaysFlagged[name] || (name == "Close" && written[recv])
	if !interesting {
		return
	}
	// The error is the final result, so the final LHS is its slot.
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(as.Pos(), "%s.%s error discarded into _; durability failures must be handled or annotated //lint:allow errdropcheck(reason)",
		recv, name)
}
