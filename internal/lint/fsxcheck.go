package lint

import (
	"go/ast"
)

// fsxPackages are the packages whose file writes must be durable:
// everything that persists store state (PR 4's WAL + snapshots, PR 7's
// packed format, replication's bootstrap installs) plus the raster and
// vault repositories. internal/fsx itself is the one audited home of
// the raw os calls.
var fsxPackages = []string{
	"repro/internal/persist",
	"repro/internal/colpack",
	"repro/internal/strabon",
	"repro/internal/replication",
	"repro/internal/raster",
	"repro/internal/vault",
}

// fsxBanned are the os entry points that produce or move files without
// the write-temp/fsync/rename dance.
var fsxBanned = map[string]string{
	"Create":    "creates a file that is not fsynced or atomically installed",
	"Rename":    "renames without the temp-file/fsync sequence (and without the directory fsync that makes the rename durable)",
	"WriteFile": "writes in place: a crash leaves a torn file",
}

// Fsxcheck enforces PR 4's durability discipline: in the persistence
// packages, durable writes go through internal/fsx's
// write-temp/fsync/rename path, never through bare os.Create,
// os.Rename, or os.WriteFile. Intentional exceptions (append-only WAL
// segments, test fixtures) carry a //lint:allow fsxcheck(reason)
// directive.
var Fsxcheck = &Analyzer{
	Name: "fsxcheck",
	Doc: "direct os.Create/os.Rename/os.WriteFile in durability-critical packages " +
		"bypass the fsx write-temp/fsync/rename discipline; use fsx.WriteFileAtomic " +
		"or annotate with //lint:allow fsxcheck(reason)",
	Run: runFsxcheck,
}

func runFsxcheck(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), fsxPackages...) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || funcPkgPath(fn) != "os" {
				return true
			}
			why, banned := fsxBanned[fn.Name()]
			if !banned {
				return true
			}
			pass.Reportf(call.Pos(), "direct os.%s %s; route durable writes through internal/fsx (fsx.WriteFileAtomic + fsx.SyncDir)",
				fn.Name(), why)
			return true
		})
	}
	return nil
}
