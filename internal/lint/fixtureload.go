package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadFixture loads analysistest fixture packages from a testdata
// source tree (srcRoot/<importPath>/*.go). Fixture packages may import
// each other (multi-package lockcheck cases) and anything the real
// module can import — stdlib and repro/* packages resolve through
// `go list -export` against the enclosing module, exactly like the
// standalone driver. A fixture directory shadows the real package of
// the same import path, which is how fixtures stand in for
// repro/internal/persist and friends.
func LoadFixture(fset *token.FileSet, srcRoot string, paths []string) ([]*Package, error) {
	ld := &fixtureLoader{
		fset:      fset,
		srcRoot:   srcRoot,
		parsed:    map[string]*fixturePkg{},
		compiled:  map[string]*Package{},
		externals: map[string]bool{},
	}
	for _, p := range paths {
		if err := ld.parseLocal(p); err != nil {
			return nil, err
		}
	}
	if len(ld.externals) > 0 {
		ext := make([]string, 0, len(ld.externals))
		for p := range ld.externals {
			ext = append(ext, p)
		}
		sort.Strings(ext)
		listed, err := goList(".", ext)
		if err != nil {
			return nil, err
		}
		exports := make(map[string]string, len(listed))
		for _, p := range listed {
			exports[p.ImportPath] = p.Export
		}
		ld.exporter = newExportImporter(fset, exports, nil)
	}
	var out []*Package
	for _, p := range paths {
		pkg, err := ld.compile(p, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type fixturePkg struct {
	path    string
	dir     string
	files   []string
	imports []string
}

type fixtureLoader struct {
	fset      *token.FileSet
	srcRoot   string
	parsed    map[string]*fixturePkg
	compiled  map[string]*Package
	externals map[string]bool
	exporter  *exportImporter
}

// parseLocal scans the fixture package's file list and import graph
// (without type-checking yet), recursing into sibling fixture packages
// and recording everything else as external.
func (ld *fixtureLoader) parseLocal(path string) error {
	if _, done := ld.parsed[path]; done {
		return nil
	}
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("fixture package %q: %w", path, err)
	}
	fp := &fixturePkg{path: path, dir: dir}
	ld.parsed[path] = fp
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fp.files = append(fp.files, e.Name())
	}
	sort.Strings(fp.files)
	if len(fp.files) == 0 {
		return fmt.Errorf("fixture package %q: no .go files in %s", path, dir)
	}
	// A cheap imports-only parse pass to discover the graph.
	for _, name := range fp.files {
		f, err := parseImportsOnly(ld.fset, filepath.Join(dir, name))
		if err != nil {
			return err
		}
		for _, spec := range f {
			imp, err := strconv.Unquote(spec)
			if err != nil {
				continue
			}
			if _, statErr := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(imp))); statErr == nil {
				fp.imports = append(fp.imports, imp)
				if err := ld.parseLocal(imp); err != nil {
					return err
				}
			} else if imp != "unsafe" {
				ld.externals[imp] = true
			}
		}
	}
	return nil
}

// compile type-checks a fixture package after its local dependencies,
// with `stack` guarding against fixture import cycles.
func (ld *fixtureLoader) compile(path string, stack []string) (*Package, error) {
	if pkg, done := ld.compiled[path]; done {
		return pkg, nil
	}
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("fixture import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
	}
	fp := ld.parsed[path]
	if fp == nil {
		return nil, fmt.Errorf("fixture package %q was never parsed", path)
	}
	for _, dep := range fp.imports {
		if _, err := ld.compile(dep, append(stack, path)); err != nil {
			return nil, err
		}
	}
	analyze, all, err := parseFiles(ld.fset, fp.dir, fp.files)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := typeCheck(ld.fset, path, all, fixtureImporter{ld})
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: fp.dir, Fset: ld.fset, Files: analyze, Types: tpkg, Info: info}
	ld.compiled[path] = pkg
	return pkg, nil
}

// fixtureImporter resolves local fixture packages first, then falls
// back to the module's export data.
type fixtureImporter struct{ ld *fixtureLoader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.ld.compiled[path]; ok {
		return pkg.Types, nil
	}
	if _, ok := fi.ld.parsed[path]; ok {
		return nil, fmt.Errorf("fixture package %q imported before being compiled", path)
	}
	if fi.ld.exporter == nil {
		return nil, fmt.Errorf("no export data loaded for %q", path)
	}
	return fi.ld.exporter.Import(path)
}
