package lint_test

import (
	"fmt"
	"go/token"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lint.Lockcheck, "lockbasic")
}

// TestLockcheckMultiPackage checks that the ...Locked contract travels
// across a package boundary: the client fixture imports the store
// fixture and calls its exported BuildSnapshotLocked with and without
// the store's mutex held.
func TestLockcheckMultiPackage(t *testing.T) {
	analysistest.Run(t, lint.Lockcheck, "lockmulti/client")
}

func TestFsxcheck(t *testing.T) {
	analysistest.Run(t, lint.Fsxcheck, "repro/internal/persist")
}

func TestCtxcheck(t *testing.T) {
	analysistest.Run(t, lint.Ctxcheck, "repro/internal/stsparql")
}

func TestFailpointcheck(t *testing.T) {
	analysistest.Run(t, lint.Failpointcheck, "repro/internal/colpack")
}

func TestErrdropcheck(t *testing.T) {
	analysistest.Run(t, lint.Errdropcheck, "repro/internal/strabon")
}

// TestFailpointOrphanFinish drives the whole-program Finish hook with
// an empty plant set: every registered failpoint must be reported as
// orphaned, anchored at the generated registry file.
func TestFailpointOrphanFinish(t *testing.T) {
	prog := &lint.Program{}
	var msgs []string
	lint.Failpointcheck.Finish(prog, func(pos token.Position, format string, args ...any) {
		if pos.Filename != "internal/faults/registry.go" {
			t.Errorf("orphan diagnostic anchored at %q, want the registry file", pos.Filename)
		}
		msgs = append(msgs, fmt.Sprintf(format, args...))
	})
	if len(msgs) != len(faults.Registry) {
		t.Fatalf("got %d orphan reports, want one per registry entry (%d)", len(msgs), len(faults.Registry))
	}
	for _, m := range msgs {
		if !strings.Contains(m, "planted nowhere") {
			t.Errorf("unexpected orphan message: %s", m)
		}
	}
	for name := range faults.Registry {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, fmt.Sprintf("%q", name)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no orphan report for registered failpoint %q", name)
		}
	}
}
