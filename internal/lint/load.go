package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only; see Pass.Files
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info populated with every map the analyzers
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` over patterns in dir and
// decodes the package stream. The -export flag compiles each package,
// so type information comes from the exact gc export data the build
// would use — no source re-typechecking of dependencies, and it works
// without network access.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error",
		"--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer from a map of import path to
// gc export-data file, with an interior cache shared across packages.
type exportImporter struct {
	compiled types.ImporterFrom
	remap    map[string]string // source import path -> resolved path (vettool ImportMap)
}

func newExportImporter(fset *token.FileSet, exports map[string]string, remap map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		compiled: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		remap:    remap,
	}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := ei.remap[path]; ok && mapped != "" {
		path = mapped
	}
	return ei.compiled.Import(path)
}

// parseFiles parses the named files (absolute or dir-relative) with
// comments, splitting test files out: they participate in
// type-checking but not analysis.
func parseFiles(fset *token.FileSet, dir string, names []string) (analyze, all []*ast.File, err error) {
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, f)
		if !strings.HasSuffix(name, "_test.go") {
			analyze = append(analyze, f)
		}
	}
	return analyze, all, nil
}

// parseImportsOnly returns the raw (quoted) import specs of one file
// without parsing bodies — enough to walk a fixture import graph.
func parseImportsOnly(fset *token.FileSet, path string) ([]string, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	var specs []string
	for _, imp := range f.Imports {
		specs = append(specs, imp.Path.Value)
	}
	return specs, nil
}

// typeCheck runs the go/types checker over files, importing
// dependencies through imp.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// LoadUnit type-checks the single package a `go vet -vettool` config
// describes, resolving imports through the build's own export-data
// files (cfg.PackageFile) after source-path remapping (cfg.ImportMap).
func LoadUnit(importPath, dir string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	analyze, all, err := parseFiles(fset, dir, goFiles)
	if err != nil {
		return nil, err
	}
	imp := newExportImporter(fset, packageFile, importMap)
	tpkg, info, err := typeCheck(fset, importPath, all, imp)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  fset,
		Files: analyze,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load lists patterns in dir (a module root), compiles them via the go
// toolchain, and type-checks every non-dependency-only package against
// the compiled export data of its imports.
func Load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		exports[p.ImportPath] = p.Export
	}
	imp := newExportImporter(fset, exports, nil)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		analyze, all, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := typeCheck(fset, p.ImportPath, all, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: analyze,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}
