// Package client exercises lockcheck across a package boundary: the
// ...Locked contract travels with the exported method, so an importing
// package must hold the store's mutex too.
package client

import "lockmulti/store"

func Good(s *store.Store) []int {
	s.Mu.RLock()
	defer s.Mu.RUnlock()
	return s.BuildSnapshotLocked() // ok: read lock held across the call
}

func Bad(s *store.Store) []int {
	return s.BuildSnapshotLocked() // want `outside a s-rooted critical section`
}
