// Package store is the exporting half of the multi-package lockcheck
// fixture: a Store with an exported mutex and a ...Locked method, the
// shape of strabon.Store.BuildSnapshotLocked.
package store

import "sync"

type Store struct {
	Mu   sync.RWMutex
	rows []int
}

func New(rows []int) *Store { return &Store{rows: rows} }

func (s *Store) BuildSnapshotLocked() []int {
	out := make([]int, len(s.rows))
	copy(out, s.rows)
	return out
}
