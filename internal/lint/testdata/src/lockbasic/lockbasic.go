// Package lockbasic exercises lockcheck's single-package rules: the
// ...Locked calling contract, critical-section tracking through
// explicit and deferred unlocks, early-return branches, RWMutex read
// sections, the self-deadlock rule, and //lint:allow suppression.
package lockbasic

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) incLocked() { c.n++ }

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incLocked() // ok: deferred unlock keeps the section open
}

func (c *Counter) IncExplicit() {
	c.mu.Lock()
	c.incLocked() // ok: inside the explicit section
	c.mu.Unlock()
}

func (c *Counter) bumpLocked() {
	c.incLocked() // ok: ...Locked calling ...Locked
}

func (c *Counter) IncBad() {
	c.incLocked() // want `outside a c-rooted critical section`
}

func (c *Counter) IncAfterUnlock() {
	c.mu.Lock()
	c.incLocked() // ok
	c.mu.Unlock()
	c.incLocked() // want `outside a c-rooted critical section`
}

func (c *Counter) IncEarlyReturn(fast bool) {
	c.mu.Lock()
	if fast {
		c.n++
		c.mu.Unlock()
		return
	}
	c.incLocked() // ok: the unlocking branch returned, fall-through still holds
	c.mu.Unlock()
}

func (c *Counter) IncAllowed() {
	c.incLocked() //lint:allow lockcheck(constructor path; the counter is not shared yet)
}

func otherMutexHeld(c *Counter, other *sync.Mutex) {
	other.Lock()
	c.incLocked() // want `outside a c-rooted critical section`
	other.Unlock()
}

type RW struct {
	mu sync.RWMutex
	v  int
}

func (r *RW) readLocked() int { return r.v }

func (r *RW) Upgrade() int {
	r.mu.RLock()
	stale := r.readLocked() // ok: an RLock section satisfies the contract
	r.mu.RUnlock()
	r.mu.Lock()
	v := r.readLocked() // ok: write section after upgrade
	r.mu.Unlock()
	return stale + v
}

func (r *RW) rotateLocked() {
	r.mu.Lock() // want `Lock acquires r\.mu inside rotateLocked`
	r.v++
	r.mu.Unlock()
}

// Pipeline pins the group-commit flush shape (persist PR 10): an outer
// flush-lock section with an inner same-receiver batch-lock section
// opening AND closing inside it. The inner unlock must not close the
// outer section, early-return branches that unlock both must not leak
// into the fall-through path, and the ...Locked call after the outer
// unlock must still be flagged.
type Pipeline struct {
	walMu sync.Mutex
	bufMu sync.Mutex
	buf   []byte
	seq   int
}

func (p *Pipeline) writeBatchLocked() { p.seq += len(p.buf) }

func (p *Pipeline) Flush(abort bool) {
	p.walMu.Lock()
	p.bufMu.Lock()
	if abort {
		p.bufMu.Unlock()
		p.walMu.Unlock()
		return
	}
	p.buf = append(p.buf, 1)
	p.bufMu.Unlock()
	p.writeBatchLocked() // ok: walMu section still open after bufMu closed
	p.walMu.Unlock()
	p.writeBatchLocked() // want `outside a p-rooted critical section`
}

func rebalanceLocked(rows []int) int { return len(rows) }

func plainCaller(mu *sync.Mutex) {
	rebalanceLocked(nil) // want `call to rebalanceLocked with no mutex held`
	mu.Lock()
	rebalanceLocked(nil) // ok: a plain ...Locked helper accepts any held mutex
	mu.Unlock()
}
