// Package strabon shadows repro/internal/strabon to exercise
// errdropcheck: dropped Sync/Append errors, write-path Close drops,
// the cleanup-before-error-return exemption, and suppression.
package strabon

import "os"

func writeAll(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		f.Close() // ok: cleanup before returning the real error
		return werr
	}
	f.Sync()        // want `f\.Sync error dropped`
	_ = f.Sync()    // want `f\.Sync error discarded into _`
	defer f.Close() // want `f\.Close error dropped on a write path`
	return nil
}

func readAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // ok: read path, no write-set evidence
	buf := make([]byte, 8)
	_, err = f.Read(buf)
	return buf, err
}

type journal struct{ n uint64 }

func (j *journal) Append(rec []byte) (uint64, error) {
	j.n++
	return j.n, nil
}

func logRecord(j *journal, rec []byte) {
	j.Append(rec) // want `j\.Append error dropped`
}

func hintFlushed(f *os.File) {
	f.Sync() //lint:allow errdropcheck(best-effort readahead hint; failure is harmless)
}
