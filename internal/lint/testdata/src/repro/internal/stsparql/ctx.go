// Package stsparql shadows repro/internal/stsparql to exercise both
// ctxcheck rules: accepted-but-unused context parameters and unbounded
// loops that spin past cancellation.
package stsparql

import "context"

func EvalAll(ctx context.Context, rows []int) (int, error) {
	total := 0
	for i, r := range rows {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += r
	}
	return total, nil
}

func QueryDropped(ctx context.Context, rows []int) int { // want `QueryDropped accepts ctx but never checks or propagates`
	total := 0
	for _, r := range rows {
		total += r
	}
	return total
}

func evalDiscarded(ctx context.Context) int { // want `evalDiscarded accepts ctx but never checks or propagates`
	_ = ctx // a blank discard is not a real use
	return 1
}

type pump struct {
	ctx  context.Context
	next func() (int, bool)
}

func (p *pump) drain() int {
	total := 0
	for { // want `unbounded loop in drain never checks the in-scope context`
		v, ok := p.next()
		if !ok {
			return total
		}
		total += v
	}
}

func (p *pump) drainChecked() (int, error) {
	total := 0
	for { // ok: polls the receiver's context each iteration
		if err := p.ctx.Err(); err != nil {
			return 0, err
		}
		v, ok := p.next()
		if !ok {
			return total, nil
		}
		total += v
	}
}

func (p *pump) drainAllowed() int {
	i := 0
	//lint:allow ctxcheck(fixed eight iterations; cancellation latency is bounded)
	for {
		i++
		if i == 8 {
			return i
		}
	}
}
