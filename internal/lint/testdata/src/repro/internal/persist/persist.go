// Package persist shadows repro/internal/persist so fsxcheck's
// path-scoped bans can be exercised without touching real code.
package persist

import "os"

func writeState(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want `direct os\.WriteFile`
		return err
	}
	f, err := os.Create(path + ".new") // want `direct os\.Create`
	if err != nil {
		return err
	}
	if cerr := f.Close(); cerr != nil {
		return cerr
	}
	return os.Rename(path+".new", path) // want `direct os\.Rename`
}

func readState(path string) ([]byte, error) {
	return os.ReadFile(path) // ok: reads are unrestricted
}

func allowedLegacy(path string, data []byte) error {
	//lint:allow fsxcheck(fixture stand-in for an append-only segment where rename-in-place cannot apply)
	return os.WriteFile(path, data, 0o644)
}
