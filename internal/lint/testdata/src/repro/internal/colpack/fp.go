// Package colpack shadows repro/internal/colpack to exercise
// failpointcheck against the real generated faults.Registry: plants
// must be string literals and must name a documented failpoint.
package colpack

import "repro/internal/faults"

func openSection(name string) error {
	if err := faults.Eval("colpack/open"); err != nil { // ok: registered in docs/operations.md
		return err
	}
	if err := faults.Eval("colpack/does-not-exist"); err != nil { // want `not in faults\.Registry`
		return err
	}
	if err := faults.Eval(name); err != nil { // want `must be a string literal`
		return err
	}
	//lint:allow failpointcheck(fixture plant behind a build tag; registered on promotion)
	if err := faults.Eval("colpack/experimental"); err != nil {
		return err
	}
	return nil
}
