// Package core implements the TELEIOS Virtual Earth Observatory: the
// four-tier architecture of Figure 2 wired into one object. The ingestion
// tier converts external satellite products into database arrays and
// metadata; the database tier is the SciQL engine (over the columnar
// kernel) plus the Strabon store queried with stSPARQL; the service tier
// offers the NOA rapid-mapping operations (processing chain, refinement,
// fire maps) and semantic annotation; applications sit on the public
// facade (package teleios at the module root).
package core

import (
	"fmt"
	"io"

	"repro/internal/column"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/kdd"
	"repro/internal/linkeddata"
	"repro/internal/noa"
	"repro/internal/ontology"
	"repro/internal/raster"
	"repro/internal/sciql"
	"repro/internal/strabon"
	"repro/internal/stsparql"
	"repro/internal/vault"
)

// Observatory is one Virtual Earth Observatory instance. It is safe for
// concurrent queries; ingestion and updates must be serialised by the
// caller (the NOA pipeline is single-writer).
type Observatory struct {
	vault    *vault.Vault
	sciql    *sciql.Engine
	store    *strabon.Store
	sparql   *stsparql.Engine
	chain    noa.Chain
	knnModel *kdd.KNNClassifier
}

// Options configure a new Observatory.
type Options struct {
	// Window is the chain's area of interest; the zero value uses the
	// whole scene region of the synthetic archive.
	Window geo.Envelope
	// LoadLinkedData preloads the auxiliary linked open data (GeoNames,
	// LinkedGeoData, CORINE, coastline, ontologies).
	LoadLinkedData bool
}

// New creates an Observatory.
func New(opts Options) *Observatory {
	if opts.Window.IsEmpty() || opts.Window == (geo.Envelope{}) {
		opts.Window = geo.Envelope{MinX: 21, MinY: 36, MaxX: 27, MaxY: 40}
	}
	store := strabon.NewStore()
	o := &Observatory{
		vault:    vault.New(),
		sciql:    sciql.NewEngine(),
		store:    store,
		sparql:   stsparql.New(store),
		chain:    noa.DefaultChain(opts.Window),
		knnModel: kdd.TrainLandCoverModel(),
	}
	if opts.LoadLinkedData {
		o.store.AddAll(linkeddata.All())
	}
	return o
}

// AttachRepository catalogues an external file repository through the
// Data Vault. Payloads are ingested lazily, on first query touch.
func (o *Observatory) AttachRepository(dir string) error {
	return o.vault.Attach(dir)
}

// Products returns the catalogued product IDs in acquisition order.
func (o *Observatory) Products() []string { return o.vault.IDs() }

// Catalog returns the vault catalogue as a relational table and registers
// it in the SciQL engine as "catalog".
func (o *Observatory) Catalog() *column.Table {
	t := o.vault.Catalog()
	o.sciql.RegisterTable(t)
	return t
}

// Ingest pulls one product through the ingestion tier: band arrays into
// the SciQL engine (named "<id>_<band>") and catalogue metadata into the
// Strabon store. It returns the decoded frame.
func (o *Observatory) Ingest(id string) (*raster.Frame, error) {
	f, err := o.vault.Frame(id)
	if err != nil {
		return nil, err
	}
	if err := ingest.RegisterFrame(o.sciql, ArrayPrefix(id), f); err != nil {
		return nil, err
	}
	o.store.AddAll(ingest.ExtractMetadata(f))
	return f, nil
}

// RunChain executes the NOA processing chain on a product and stores the
// resulting hotspot triples.
func (o *Observatory) RunChain(id string) (*noa.Product, error) {
	f, err := o.vault.Frame(id)
	if err != nil {
		return nil, err
	}
	p, err := o.chain.Run(f)
	if err != nil {
		return nil, err
	}
	noa.StoreProduct(o.sparql, p)
	return p, nil
}

// SetChain replaces the chain configuration (the demo compares chains
// with different classification submodules this way).
func (o *Observatory) SetChain(c noa.Chain) { o.chain = c }

// Chain returns the current chain configuration.
func (o *Observatory) Chain() noa.Chain { return o.chain }

// Refine runs the Scenario 2 thematic-accuracy refinement over all stored
// hotspots.
func (o *Observatory) Refine() (noa.RefineStats, error) {
	return noa.Refine(o.sparql)
}

// FireMap builds the enriched fire map from the current store state.
func (o *Observatory) FireMap(radiusMeters float64) (*noa.FireMap, error) {
	return noa.BuildFireMap(o.sparql, radiusMeters)
}

// Annotate runs the semantic annotation of one product's IR image: patch
// features are classified against the land-cover/monitoring ontologies
// and the annotations stored as linked data. It returns the number of
// annotations.
func (o *Observatory) Annotate(id string, patchSize int) (int, error) {
	f, err := o.vault.Frame(id)
	if err != nil {
		return 0, err
	}
	img, err := f.Band(raster.BandIR39)
	if err != nil {
		return 0, err
	}
	productIRI := noa.ProductIRI(id).Value
	anns, err := kdd.AnnotatePatches(productIRI, img, f.GeoRef, patchSize, o.knnModel, 0.5)
	if err != nil {
		return 0, err
	}
	for i, a := range anns {
		o.store.AddAll(a.Triples(i))
	}
	return len(anns), nil
}

// ArrayPrefix converts a product ID to the SciQL identifier prefix its
// band arrays are registered under (non-identifier characters become '_').
func ArrayPrefix(id string) string {
	b := []byte(id)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// SciQL executes a SciQL statement against the database tier.
func (o *Observatory) SciQL(stmt string) (*sciql.Result, error) {
	return o.sciql.Exec(stmt)
}

// StSPARQL executes an stSPARQL statement against the Strabon store.
func (o *Observatory) StSPARQL(query string) (*stsparql.Result, error) {
	return o.sparql.Query(query)
}

// SciQLEngine exposes the SciQL engine for advanced use.
func (o *Observatory) SciQLEngine() *sciql.Engine { return o.sciql }

// SPARQLEngine exposes the stSPARQL engine for advanced use.
func (o *Observatory) SPARQLEngine() *stsparql.Engine { return o.sparql }

// Store exposes the Strabon store.
func (o *Observatory) Store() *strabon.Store { return o.store }

// Vault exposes the Data Vault.
func (o *Observatory) Vault() *vault.Vault { return o.vault }

// Ontologies returns the built-in domain ontologies.
func (o *Observatory) Ontologies() (landCover, monitoring *ontology.Ontology) {
	return ontology.LandCoverOntology(), ontology.MonitoringOntology()
}

// WriteShapefile writes a product's hotspots as an ESRI polygon
// shapefile.
func (o *Observatory) WriteShapefile(w io.Writer, p *noa.Product) error {
	return noa.WriteShapefile(w, p.Hotspots)
}

// Stats summarises the observatory state.
type Stats struct {
	Vault vault.Stats
	Store strabon.Stats
}

// Stats returns a snapshot across tiers.
func (o *Observatory) Stats() Stats {
	return Stats{Vault: o.vault.Stats(), Store: o.store.Stats()}
}

// SaveStore persists the Strabon store (triples + dictionary) to dir.
func (o *Observatory) SaveStore(dir string) error { return o.store.Save(dir) }

// LoadStore replaces the Strabon store with one previously saved by
// SaveStore; the stSPARQL engine is rebound to it.
func (o *Observatory) LoadStore(dir string) error {
	st, err := strabon.Load(dir)
	if err != nil {
		return err
	}
	o.store = st
	o.sparql = stsparql.New(st)
	return nil
}

// GenerateArchive writes a synthetic SEVIRI archive (the stand-in for the
// proprietary MSG feed) into dir: steps frames of size width x height.
func GenerateArchive(dir string, width, height, steps int) ([]string, error) {
	frames := raster.Generate(raster.GenOptions{Width: width, Height: height, Steps: steps})
	ids := make([]string, 0, len(frames))
	for _, f := range frames {
		if _, err := raster.SaveFrame(dir, f); err != nil {
			return nil, fmt.Errorf("core: saving %s: %w", f.ID, err)
		}
		ids = append(ids, f.ID)
	}
	return ids, nil
}
