// Package ontology implements the OWL/RDFS-subset ontology machinery of
// the TELEIOS knowledge tier: class hierarchies with subsumption
// reasoning, property domains/ranges, and the specific domain ontologies
// the paper names — a land-cover ontology (water body, lake, forest, ...)
// and an environmental-monitoring ontology (fire, burned area, flood, ...)
// — used to annotate EO products.
package ontology

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Namespaces of the built-in domain ontologies.
const (
	// NOA is the namespace of hotspot products and annotations.
	NOA = "http://teleios.di.uoa.gr/noa#"
	// LandCover is the land-cover ontology namespace.
	LandCover = "http://teleios.di.uoa.gr/landcover#"
	// Monitoring is the environmental-monitoring ontology namespace.
	Monitoring = "http://teleios.di.uoa.gr/monitoring#"
)

// Ontology is a class taxonomy with subsumption reasoning. The zero value
// is unusable; call New.
type Ontology struct {
	// super maps class IRI -> direct superclass IRIs.
	super map[string][]string
	// labels maps class IRI -> human-readable label.
	labels map[string]string
	// properties maps property IRI -> (domain, range) class IRIs.
	domains map[string]string
	ranges  map[string]string
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		super:   map[string][]string{},
		labels:  map[string]string{},
		domains: map[string]string{},
		ranges:  map[string]string{},
	}
}

// AddClass declares a class with an optional label.
func (o *Ontology) AddClass(iri, label string) {
	if _, ok := o.super[iri]; !ok {
		o.super[iri] = nil
	}
	if label != "" {
		o.labels[iri] = label
	}
}

// AddSubClass declares sub rdfs:subClassOf super (both classes are
// declared implicitly).
func (o *Ontology) AddSubClass(sub, super string) {
	o.AddClass(sub, "")
	o.AddClass(super, "")
	for _, s := range o.super[sub] {
		if s == super {
			return
		}
	}
	o.super[sub] = append(o.super[sub], super)
}

// AddProperty declares a property with a domain and range class.
func (o *Ontology) AddProperty(iri, domain, rng string) {
	o.domains[iri] = domain
	o.ranges[iri] = rng
}

// Classes returns all declared class IRIs, sorted.
func (o *Ontology) Classes() []string {
	out := make([]string, 0, len(o.super))
	for c := range o.super {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Label returns the label for a class ("" when absent).
func (o *Ontology) Label(iri string) string { return o.labels[iri] }

// IsSubClassOf reports whether sub is a (reflexive, transitive) subclass
// of super.
func (o *Ontology) IsSubClassOf(sub, super string) bool {
	if sub == super {
		return true
	}
	seen := map[string]bool{}
	stack := []string{sub}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[c] {
			continue
		}
		seen[c] = true
		for _, s := range o.super[c] {
			if s == super {
				return true
			}
			stack = append(stack, s)
		}
	}
	return false
}

// Superclasses returns the transitive superclasses of a class (excluding
// itself), sorted.
func (o *Ontology) Superclasses(iri string) []string {
	var out []string
	seen := map[string]bool{}
	stack := []string{iri}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range o.super[c] {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
				stack = append(stack, s)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Subclasses returns the transitive subclasses of a class (excluding
// itself), sorted.
func (o *Ontology) Subclasses(iri string) []string {
	var out []string
	for c := range o.super {
		if c != iri && o.IsSubClassOf(c, iri) {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks the taxonomy for cycles (a class being its own proper
// superclass), which would make subsumption meaningless.
func (o *Ontology) Validate() error {
	for c := range o.super {
		for _, s := range o.Superclasses(c) {
			if s == c {
				return fmt.Errorf("ontology: cycle through class %s", c)
			}
		}
	}
	return nil
}

// Triples serialises the ontology as RDFS triples (rdf:type owl:Class,
// rdfs:subClassOf, rdfs:label, rdfs:domain, rdfs:range).
func (o *Ontology) Triples() []rdf.Triple {
	const (
		owlClass  = "http://www.w3.org/2002/07/owl#Class"
		rdfsDom   = "http://www.w3.org/2000/01/rdf-schema#domain"
		rdfsRange = "http://www.w3.org/2000/01/rdf-schema#range"
	)
	var out []rdf.Triple
	for _, c := range o.Classes() {
		out = append(out, rdf.NewTriple(rdf.IRI(c), rdf.IRI(rdf.RDFType), rdf.IRI(owlClass)))
		if l := o.labels[c]; l != "" {
			out = append(out, rdf.NewTriple(rdf.IRI(c), rdf.IRI(rdf.RDFSLabel), rdf.Literal(l)))
		}
		supers := append([]string(nil), o.super[c]...)
		sort.Strings(supers)
		for _, s := range supers {
			out = append(out, rdf.NewTriple(rdf.IRI(c), rdf.IRI(rdf.RDFSSubClassOf), rdf.IRI(s)))
		}
	}
	props := make([]string, 0, len(o.domains))
	for p := range o.domains {
		props = append(props, p)
	}
	sort.Strings(props)
	for _, p := range props {
		out = append(out, rdf.NewTriple(rdf.IRI(p), rdf.IRI(rdfsDom), rdf.IRI(o.domains[p])))
		out = append(out, rdf.NewTriple(rdf.IRI(p), rdf.IRI(rdfsRange), rdf.IRI(o.ranges[p])))
	}
	return out
}

// FromTriples rebuilds an ontology from RDFS triples (inverse of Triples).
func FromTriples(triples []rdf.Triple) *Ontology {
	o := New()
	for _, t := range triples {
		switch t.P.Value {
		case rdf.RDFSSubClassOf:
			o.AddSubClass(t.S.Value, t.O.Value)
		case rdf.RDFSLabel:
			o.AddClass(t.S.Value, t.O.Value)
		case rdf.RDFType:
			if t.O.Value == "http://www.w3.org/2002/07/owl#Class" {
				o.AddClass(t.S.Value, "")
			}
		}
	}
	return o
}

// LandCoverOntology builds the land-cover taxonomy the paper sketches:
// water bodies (lake, sea, river), vegetation (forest subtypes, cropland),
// artificial surfaces.
func LandCoverOntology() *Ontology {
	o := New()
	lc := func(s string) string { return LandCover + s }
	o.AddClass(lc("LandCover"), "land cover")
	for sub, super := range map[string]string{
		"WaterBody":         "LandCover",
		"Lake":              "WaterBody",
		"Sea":               "WaterBody",
		"River":             "WaterBody",
		"Vegetation":        "LandCover",
		"Forest":            "Vegetation",
		"ConiferousForest":  "Forest",
		"BroadleavedForest": "Forest",
		"Cropland":          "Vegetation",
		"Grassland":         "Vegetation",
		"Artificial":        "LandCover",
		"UrbanFabric":       "Artificial",
		"Industrial":        "Artificial",
		"BareSoil":          "LandCover",
	} {
		o.AddSubClass(lc(sub), lc(super))
		o.AddClass(lc(sub), sub)
	}
	return o
}

// MonitoringOntology builds the environmental-monitoring taxonomy: events
// (fire, flood), observations (hotspot, burned area) and products.
func MonitoringOntology() *Ontology {
	o := New()
	m := func(s string) string { return Monitoring + s }
	o.AddClass(m("Event"), "environmental event")
	for sub, super := range map[string]string{
		"Fire":             "Event",
		"ForestFire":       "Fire",
		"AgriculturalFire": "Fire",
		"Flood":            "Event",
		"Observation":      "Event",
		"Hotspot":          "Observation",
		"BurnedArea":       "Observation",
		"RefinedHotspot":   "Hotspot",
		"RejectedHotspot":  "Observation",
	} {
		o.AddSubClass(m(sub), m(super))
		o.AddClass(m(sub), sub)
	}
	o.AddProperty(m("observedBy"), m("Observation"), NOA+"Sensor")
	o.AddProperty(m("correspondsTo"), m("Hotspot"), m("Fire"))
	return o
}
