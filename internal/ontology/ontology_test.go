package ontology

import (
	"testing"

	"repro/internal/rdf"
)

func TestSubsumption(t *testing.T) {
	o := New()
	o.AddSubClass("B", "A")
	o.AddSubClass("C", "B")
	o.AddSubClass("D", "B")
	if !o.IsSubClassOf("C", "A") {
		t.Fatal("transitive subclass")
	}
	if !o.IsSubClassOf("C", "C") {
		t.Fatal("reflexive subclass")
	}
	if o.IsSubClassOf("A", "C") {
		t.Fatal("inverse should not hold")
	}
	if o.IsSubClassOf("C", "D") {
		t.Fatal("siblings are not subclasses")
	}
	supers := o.Superclasses("C")
	if len(supers) != 2 || supers[0] != "A" || supers[1] != "B" {
		t.Fatalf("superclasses = %v", supers)
	}
	subs := o.Subclasses("A")
	if len(subs) != 3 {
		t.Fatalf("subclasses = %v", subs)
	}
	if len(o.Subclasses("C")) != 0 {
		t.Fatal("leaf has no subclasses")
	}
}

func TestDuplicateSubclassIgnored(t *testing.T) {
	o := New()
	o.AddSubClass("B", "A")
	o.AddSubClass("B", "A")
	if got := o.Superclasses("B"); len(got) != 1 {
		t.Fatalf("superclasses = %v", got)
	}
}

func TestDiamond(t *testing.T) {
	o := New()
	o.AddSubClass("B", "A")
	o.AddSubClass("C", "A")
	o.AddSubClass("D", "B")
	o.AddSubClass("D", "C")
	if !o.IsSubClassOf("D", "A") {
		t.Fatal("diamond subsumption")
	}
	// A appears once despite two paths.
	supers := o.Superclasses("D")
	count := 0
	for _, s := range supers {
		if s == "A" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("A counted %d times", count)
	}
}

func TestValidateCycle(t *testing.T) {
	o := New()
	o.AddSubClass("A", "B")
	o.AddSubClass("B", "C")
	if err := o.Validate(); err != nil {
		t.Fatalf("acyclic: %v", err)
	}
	o.AddSubClass("C", "A")
	if err := o.Validate(); err == nil {
		t.Fatal("cycle should be detected")
	}
}

func TestLabelsAndClasses(t *testing.T) {
	o := New()
	o.AddClass("X", "the X")
	if o.Label("X") != "the X" {
		t.Fatal("label")
	}
	if o.Label("Y") != "" {
		t.Fatal("missing label")
	}
	o.AddSubClass("Y", "X")
	cs := o.Classes()
	if len(cs) != 2 || cs[0] != "X" {
		t.Fatalf("classes = %v", cs)
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	o := LandCoverOntology()
	triples := o.Triples()
	if len(triples) == 0 {
		t.Fatal("no triples")
	}
	back := FromTriples(triples)
	if !back.IsSubClassOf(LandCover+"Lake", LandCover+"WaterBody") {
		t.Fatal("subclass lost")
	}
	if !back.IsSubClassOf(LandCover+"ConiferousForest", LandCover+"Vegetation") {
		t.Fatal("deep subclass lost")
	}
	if back.Label(LandCover+"Lake") != "Lake" {
		t.Fatalf("label = %q", back.Label(LandCover+"Lake"))
	}
}

func TestBuiltinOntologies(t *testing.T) {
	lc := LandCoverOntology()
	if err := lc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !lc.IsSubClassOf(LandCover+"Sea", LandCover+"LandCover") {
		t.Fatal("sea is land cover")
	}
	mon := MonitoringOntology()
	if err := mon.Validate(); err != nil {
		t.Fatal(err)
	}
	if !mon.IsSubClassOf(Monitoring+"RefinedHotspot", Monitoring+"Observation") {
		t.Fatal("refined hotspot is an observation")
	}
	if !mon.IsSubClassOf(Monitoring+"ForestFire", Monitoring+"Event") {
		t.Fatal("forest fire is an event")
	}
	// Property triples present.
	found := false
	for _, tr := range mon.Triples() {
		if tr.P.Value == "http://www.w3.org/2000/01/rdf-schema#domain" {
			found = true
		}
	}
	if !found {
		t.Fatal("property domains missing")
	}
	_ = rdf.Term{}
}
