package stsparql

import (
	"math"

	"repro/internal/geo"
	"repro/internal/strabon"
)

// The physical plan. A parsed WHERE group compiles into an explicit
// operator DAG — scan → probe/join → filter → project — planned ONCE per
// evaluation against the snapshot's statistics (per-predicate triple and
// distinct-subject/object counts, R-tree spatial selectivity), then
// executed; every node records its estimated and measured output
// cardinality plus the morsel-parallelism it used, which is exactly what
// EXPLAIN renders. The same planner orders the legacy evaluator's
// patterns, so the two executors always agree on join order.

type nodeKind int

const (
	nodeScan     nodeKind = iota + 1 // pattern with no previously-bound variable
	nodeJoin                         // pattern probing/joining on bound variables
	nodeBind                         // BIND(expr AS ?v)
	nodeFilter                       // FILTER(expr)
	nodeUnion                        // { A } UNION { B } ...
	nodeOptional                     // OPTIONAL { ... }
)

func (k nodeKind) String() string {
	switch k {
	case nodeScan:
		return "scan"
	case nodeJoin:
		return "join"
	case nodeBind:
		return "bind"
	case nodeFilter:
		return "filter"
	case nodeUnion:
		return "union"
	case nodeOptional:
		return "optional"
	}
	return "?"
}

// planNode is one physical operator. Exactly one of pat/bind/filt/
// alts/opt is meaningful, per kind.
type planNode struct {
	kind nodeKind
	pat  Pattern
	bind BindClause
	filt Expression
	alts []*groupPlan // union alternatives
	opt  *groupPlan   // optional subgroup

	est     float64 // estimated output rows
	actual  int     // measured output rows
	ran     bool    // false when short-circuited (empty input upstream)
	morsels int     // morsel batches the operator executed (0/1 = serial)
}

// groupPlan is the compiled form of one Group: ordered operators plus
// the group's spatial pushdown hints.
type groupPlan struct {
	hints map[string]geo.Envelope
	nodes []*planNode
	est   float64 // estimated output rows of the whole group
}

// planner compiles Groups against one snapshot's statistics.
type planner struct {
	e          *Engine
	snap       *strabon.Snapshot
	spatialSel map[geo.Envelope]float64 // memoised R-tree selectivities
}

func copyBound(b map[string]bool) map[string]bool {
	nb := make(map[string]bool, len(b))
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// patternJoins reports whether the pattern shares a variable with the
// already-bound set (i.e. executes as a join rather than a scan).
func patternJoins(pat Pattern, bound map[string]bool) bool {
	for _, v := range pat.Vars() {
		if bound[v] {
			return true
		}
	}
	return false
}

// planGroup compiles one group. bound is mutated: on return it also
// contains every variable the group binds, mirroring the slot widths the
// executor will see (sub-plans of later siblings may treat them as join
// keys). inEst is the estimated input cardinality.
func (pl *planner) planGroup(g *Group, bound map[string]bool, inEst float64) *groupPlan {
	if g == nil {
		return &groupPlan{est: inEst}
	}
	gp := &groupPlan{hints: pl.e.spatialHints(g.Filters)}
	patterns := g.Patterns
	if !pl.e.DisableOptimizer {
		patterns = pl.orderPatterns(patterns, bound, gp.hints)
	}
	cur := inEst
	for _, pat := range patterns {
		n := &planNode{kind: nodeJoin, pat: pat}
		if !patternJoins(pat, bound) {
			n.kind = nodeScan
		}
		cur *= pl.estimatePattern(pat, bound, gp.hints)
		n.est = cur
		gp.nodes = append(gp.nodes, n)
		for _, vv := range pat.Vars() {
			bound[vv] = true
		}
	}
	for _, bc := range g.Binds {
		gp.nodes = append(gp.nodes, &planNode{kind: nodeBind, bind: bc, est: cur})
		bound[bc.Var] = true
	}
	for _, f := range g.Filters {
		cur *= pl.filterSelectivity(f)
		gp.nodes = append(gp.nodes, &planNode{kind: nodeFilter, filt: f, est: cur})
	}
	for _, alts := range g.Unions {
		n := &planNode{kind: nodeUnion}
		// Every alternative sees the pre-union bound set (the executor
		// reseeds each one from the same table); their variables merge
		// into the bound set only after the whole block.
		newly := map[string]bool{}
		var sum float64
		for _, alt := range alts {
			ab := copyBound(bound)
			ap := pl.planGroup(alt, ab, cur)
			n.alts = append(n.alts, ap)
			sum += ap.est
			for v := range ab {
				newly[v] = true
			}
		}
		for v := range newly {
			bound[v] = true
		}
		cur = sum
		n.est = cur
		gp.nodes = append(gp.nodes, n)
	}
	for _, opt := range g.Optionals {
		// Optionals run sequentially: each sees the variables bound by
		// the previous one (the executor's table width has grown).
		op := pl.planGroup(opt, bound, cur)
		cur = math.Max(cur, op.est)
		gp.nodes = append(gp.nodes, &planNode{kind: nodeOptional, opt: op, est: cur})
	}
	gp.est = cur
	return gp
}

// orderPatterns greedily picks the pattern with the smallest estimated
// per-row match count next, treating variables bound by earlier patterns
// (or the seed) as join keys. bound is not mutated.
func (pl *planner) orderPatterns(patterns []Pattern, bound map[string]bool, hints map[string]geo.Envelope) []Pattern {
	if len(patterns) <= 1 {
		return patterns
	}
	local := copyBound(bound)
	remaining := append([]Pattern(nil), patterns...)
	ordered := make([]Pattern, 0, len(patterns))
	for len(remaining) > 0 {
		bestIdx, bestCost := 0, math.Inf(1)
		for i, pat := range remaining {
			if cost := pl.estimatePattern(pat, local, hints); cost < bestCost {
				bestIdx, bestCost = i, cost
			}
		}
		chosen := remaining[bestIdx]
		ordered = append(ordered, chosen)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		for _, vv := range chosen.Vars() {
			local[vv] = true
		}
	}
	return ordered
}

// estimatePattern returns the expected number of matches of one pattern
// PER input row, from the snapshot statistics:
//
//   - the base is the index cardinality of the pattern's constant parts;
//   - each already-bound variable restricts matches like an equality
//     selection on its component, so the base is divided by that
//     component's distinct count — per-predicate when the predicate is
//     constant (count(p)/distinctS(p) is the textbook estimate for a
//     subject-bound probe), global otherwise;
//   - a spatial filter hint on a still-unbound object multiplies by the
//     R-tree selectivity of the hint's envelope, since the executor
//     prunes candidates through the same index.
func (pl *planner) estimatePattern(pat Pattern, bound map[string]bool, hints map[string]geo.Envelope) float64 {
	var constPat strabon.TriplePattern
	pos := [3]PatTerm{pat.S, pat.P, pat.O}
	dst := [3]*uint64{&constPat.S, &constPat.P, &constPat.O}
	for i, pt := range pos {
		if pt.IsVar() {
			continue
		}
		id, ok := pl.snap.Lookup(pt.Term)
		if !ok {
			return 0 // unknown constant: the pattern cannot match
		}
		*dst[i] = id
	}
	est := float64(pl.snap.Cardinality(constPat))
	if est == 0 {
		return 0
	}
	st := pl.snap.Stats()
	pStat, havePred := st.Pred[constPat.P]
	div := func(d int) {
		if d > 1 {
			est /= float64(d)
		}
	}
	if pat.S.IsVar() && bound[pat.S.Var] {
		if havePred {
			div(pStat.DistinctS)
		} else {
			div(st.DistinctS)
		}
	}
	if pat.P.IsVar() && bound[pat.P.Var] {
		div(st.DistinctP)
	}
	if pat.O.IsVar() && bound[pat.O.Var] {
		if havePred {
			div(pStat.DistinctO)
		} else {
			div(st.DistinctO)
		}
	}
	if ov := objVar(pat); ov != "" && !bound[ov] {
		if env, ok := hints[ov]; ok {
			est *= pl.spatialSelectivity(env)
		}
	}
	return est
}

func (pl *planner) spatialSelectivity(env geo.Envelope) float64 {
	if s, ok := pl.spatialSel[env]; ok {
		return s
	}
	s := pl.snap.SpatialSelectivity(env)
	if pl.spatialSel == nil {
		pl.spatialSel = map[geo.Envelope]float64{}
	}
	pl.spatialSel[env] = s
	return s
}

// filterSelectivity estimates the fraction of rows a FILTER keeps.
// Spatial shapes use the R-tree; the rest fall back to the classic
// System-R constants (1/10 equality, 1/3 range, 1/2 default).
func (pl *planner) filterSelectivity(f Expression) float64 {
	switch t := f.(type) {
	case *EBinary:
		switch t.Op {
		case "&&":
			return pl.filterSelectivity(t.Left) * pl.filterSelectivity(t.Right)
		case "||":
			return math.Min(1, pl.filterSelectivity(t.Left)+pl.filterSelectivity(t.Right))
		case "=":
			return 0.1
		case "!=":
			return 0.9
		case "<", "<=", ">", ">=":
			if call, lit, _ := distanceShape(t); call != nil {
				if v, g, ok := varConstGeom(call.Args, pl.e); ok {
					_ = v
					if meters, ok2 := numericValue(lit.Term); ok2 {
						// Same conservative degree expansion the pushdown
						// hint uses (1 degree ≥ ~78 km below 45° lat).
						env := g.Geom.Envelope().Expand(meters / 78000)
						return pl.spatialSelectivity(env)
					}
				}
			}
			return 1.0 / 3
		}
	case *EUnary:
		if t.Op == "!" {
			return 1 - pl.filterSelectivity(t.X)
		}
	case *ECall:
		if (t.NS == "strdf" || t.NS == "geof") && spatialPredicates[t.Name] != nil {
			if _, g, ok := varConstGeom(t.Args, pl.e); ok {
				return pl.spatialSelectivity(g.Geom.Envelope())
			}
			return 1.0 / 3
		}
		if t.NS == "" && t.Name == "bound" {
			return 0.9
		}
	}
	return 0.5
}
