package stsparql

import (
	"testing"

	"repro/internal/strabon"
)

// Parser robustness: malformed inputs must error, never panic, never
// silently succeed.
func TestParserRejectsGarbage(t *testing.T) {
	inputs := []string{
		"",
		"garbage",
		"SELECT",
		"SELECT ?x",
		"SELECT ?x WHERE",
		"SELECT ?x WHERE {",
		"SELECT ?x WHERE { ?x ?p }",
		"SELECT ?x WHERE { ?x ?p ?o } ORDER",
		"SELECT ?x WHERE { ?x ?p ?o } ORDER BY",
		"SELECT ?x WHERE { ?x ?p ?o } LIMIT",
		"SELECT ?x WHERE { ?x ?p ?o } LIMIT abc",
		"SELECT ?x WHERE { ?x ?p ?o } GROUP BY 5",
		"SELECT (COUNT(* AS ?n) WHERE { ?s ?p ?o }",
		"SELECT (?x AS) WHERE { ?s ?p ?o }",
		"ASK { ?s ?p ?o",
		"CONSTRUCT WHERE { ?s ?p ?o }",
		"CONSTRUCT { ?s ?p ?o } { ?s ?p ?o }",
		"INSERT { ?s ?p ?o }",
		"DELETE { ?s ?p ?o } INSERT { ?s ?p ?o }",
		"INSERT DATA { <a> <b> ?v }",
		"PREFIX",
		"PREFIX foo <http://x/>",
		"SELECT ?x WHERE { ?x a foo:Bar }",
		"SELECT ?x WHERE { ?x ?p \"unterminated }",
		"SELECT ?x WHERE { ?x ?p ?o . FILTER }",
		"SELECT ?x WHERE { ?x ?p ?o . FILTER( }",
		"SELECT ?x WHERE { ?x ?p ?o . BIND(1 + AS ?y) }",
		"SELECT ?x WHERE { ?x ?p ?o . OPTIONAL ?x }",
		"SELECT ?x WHERE { { ?x ?p ?o } UNION }",
		"SELECT ?x WHERE { ?x ?p ?o } trailing",
		"SELECT ?x WHERE { ?x ?p \"v\"^^ }",
		"SELECT ?x WHERE { ?x ?p ?o . FILTER(?x <) }",
		"SELECT ?x WHERE { ?x ?p ?o . FILTER(?x && ) }",
		"SELECT ? WHERE { ?s ?p ?o }",
	}
	for _, q := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("ParseQuery(%q) panicked: %v", q, r)
				}
			}()
			if _, err := ParseQuery(q); err == nil {
				t.Errorf("ParseQuery(%q) succeeded", q)
			}
		}()
	}
}

// Valid corner-case syntax that must parse.
func TestParserAcceptsCorners(t *testing.T) {
	inputs := []string{
		"SELECT * WHERE { }",
		"SELECT ?x WHERE { ?x a <http://x/C> . }",
		"SELECT ?x { ?x ?p ?o }", // WHERE keyword optional
		"ASK WHERE { ?s ?p ?o . ?s ?q ?r }",
		`SELECT ?x WHERE { ?x ?p "v"@en }`,
		`SELECT ?x WHERE { ?x ?p "1"^^<http://www.w3.org/2001/XMLSchema#integer> }`,
		`SELECT ?x WHERE { ?x ?p -1.5 }`,
		`SELECT ?x WHERE { ?x ?p true . ?x ?q false }`,
		`SELECT ?x WHERE { ?x ?p ?o . FILTER(!(?o = 1) && (?o < 5 || ?o > 9)) }`,
		`SELECT ?x WHERE { ?x ?p ?o ; ?q ?r , ?r2 . }`,
		"# comment\nSELECT ?x WHERE { ?x ?p ?o } # trailing",
		`SELECT ?x WHERE { _:b ?p ?x }`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p ?o } ORDER BY DESC(?x) ?o LIMIT 5 OFFSET 2`,
	}
	for _, q := range inputs {
		if _, err := ParseQuery(q); err != nil {
			t.Errorf("ParseQuery(%q) failed: %v", q, err)
		}
	}
}

// Queries over an empty store behave (no panics, empty results).
func TestEvalOnEmptyStore(t *testing.T) {
	e := New(strabon.NewStore())
	res := e.MustQuery(`SELECT * WHERE { ?s ?p ?o }`)
	if len(res.Bindings) != 0 {
		t.Fatal("empty store should have no solutions")
	}
	if e.MustQuery(`ASK WHERE { ?s ?p ?o }`).Bool {
		t.Fatal("ASK on empty store")
	}
	cnt := e.MustQuery(`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`)
	if cnt.Bindings[0]["n"].Value != "0" {
		t.Fatal("count on empty store")
	}
}
