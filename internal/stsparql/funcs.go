package stsparql

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/strdf"
)

// Expression evaluation. All values are rdf.Term; computed numbers,
// booleans and geometries are re-encoded as typed literals. An error from
// evalExpr means "type error / unbound" — filters treat it as false per
// SPARQL semantics.

var errUnbound = fmt.Errorf("stsparql: unbound variable in expression")

// evalFilter evaluates a filter expression to its effective boolean value;
// evaluation errors yield false (SPARQL type-error semantics).
func (e *Engine) evalFilter(ex Expression, b Binding) (bool, error) {
	t, err := e.evalExpr(ex, b)
	if err != nil {
		return false, nil
	}
	return effectiveBool(t)
}

func (e *Engine) evalExpr(ex Expression, b Binding) (rdf.Term, error) {
	switch t := ex.(type) {
	case *EVar:
		v, ok := b[t.Name]
		if !ok {
			return rdf.Term{}, errUnbound
		}
		return v, nil
	case *ELit:
		return t.Term, nil
	case *EUnary:
		v, err := e.evalExpr(t.X, b)
		if err != nil {
			return rdf.Term{}, err
		}
		switch t.Op {
		case "!":
			bv, err := effectiveBool(v)
			if err != nil {
				return rdf.Term{}, err
			}
			return rdf.BooleanLiteral(!bv), nil
		case "-":
			f, ok := numericValue(v)
			if !ok {
				return rdf.Term{}, fmt.Errorf("stsparql: unary minus on non-number")
			}
			return numberLiteral(-f, v), nil
		}
		return rdf.Term{}, fmt.Errorf("stsparql: unknown unary op %q", t.Op)
	case *EBinary:
		return e.evalBinary(t, b)
	case *ECall:
		return e.evalCall(t, b)
	}
	return rdf.Term{}, fmt.Errorf("stsparql: unsupported expression %T", ex)
}

func (e *Engine) evalBinary(t *EBinary, b Binding) (rdf.Term, error) {
	if t.Op == "&&" || t.Op == "||" {
		lv, lerr := e.evalExpr(t.Left, b)
		var lb bool
		if lerr == nil {
			lb, lerr = boolOrErr(lv)
		}
		if t.Op == "&&" {
			if lerr == nil && !lb {
				return rdf.BooleanLiteral(false), nil
			}
		} else if lerr == nil && lb {
			return rdf.BooleanLiteral(true), nil
		}
		rv, rerr := e.evalExpr(t.Right, b)
		var rb bool
		if rerr == nil {
			rb, rerr = boolOrErr(rv)
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		if t.Op == "&&" {
			if lerr != nil {
				return rdf.Term{}, lerr
			}
			return rdf.BooleanLiteral(lb && rb), nil
		}
		if rb {
			return rdf.BooleanLiteral(true), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		return rdf.BooleanLiteral(lb || rb), nil
	}
	l, err := e.evalExpr(t.Left, b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := e.evalExpr(t.Right, b)
	if err != nil {
		return rdf.Term{}, err
	}
	switch t.Op {
	case "+", "-", "*", "/":
		lf, lok := numericValue(l)
		rf, rok := numericValue(r)
		if !lok || !rok {
			return rdf.Term{}, fmt.Errorf("stsparql: arithmetic on non-numbers")
		}
		var v float64
		switch t.Op {
		case "+":
			v = lf + rf
		case "-":
			v = lf - rf
		case "*":
			v = lf * rf
		case "/":
			if rf == 0 {
				return rdf.Term{}, fmt.Errorf("stsparql: division by zero")
			}
			v = lf / rf
		}
		return rdf.DoubleLiteral(v), nil
	case "=", "!=", "<", "<=", ">", ">=":
		c := compareTerms(l, r)
		var ok bool
		switch t.Op {
		case "=":
			ok = c == 0
		case "!=":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return rdf.BooleanLiteral(ok), nil
	}
	return rdf.Term{}, fmt.Errorf("stsparql: unknown operator %q", t.Op)
}

// compareTerms orders two terms: numerics numerically, dateTimes
// temporally, otherwise by kind then lexical form.
func compareTerms(a, b rdf.Term) int {
	if af, aok := numericValue(a); aok {
		if bf, bok := numericValue(b); bok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	if at, aok := timeValue(a); aok {
		if bt, bok := timeValue(b); bok {
			switch {
			case at.Before(bt):
				return -1
			case at.After(bt):
				return 1
			default:
				return 0
			}
		}
	}
	if a == b {
		return 0
	}
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype, b.Datatype); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

func numericValue(t rdf.Term) (float64, bool) {
	if t.Kind != rdf.KindLiteral {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble,
		"http://www.w3.org/2001/XMLSchema#float",
		"http://www.w3.org/2001/XMLSchema#long",
		"http://www.w3.org/2001/XMLSchema#int":
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	}
	return 0, false
}

func timeValue(t rdf.Term) (time.Time, bool) {
	if t.Kind != rdf.KindLiteral || t.Datatype != rdf.XSDDateTime {
		return time.Time{}, false
	}
	tm, err := time.Parse(time.RFC3339, t.Value)
	return tm, err == nil
}

func numberLiteral(f float64, like rdf.Term) rdf.Term {
	if like.Datatype == rdf.XSDInteger && f == math.Trunc(f) {
		return rdf.IntegerLiteral(int64(f))
	}
	return rdf.DoubleLiteral(f)
}

func effectiveBool(t rdf.Term) (bool, error) {
	return boolOrErr(t)
}

func boolOrErr(t rdf.Term) (bool, error) {
	if t.Kind != rdf.KindLiteral {
		return false, fmt.Errorf("stsparql: non-literal in boolean context")
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true" || t.Value == "1", nil
	case "", rdf.XSDString:
		return t.Value != "", nil
	}
	if f, ok := numericValue(t); ok {
		return f != 0, nil
	}
	return false, fmt.Errorf("stsparql: no boolean value for %s", t)
}

func (e *Engine) evalCall(c *ECall, b Binding) (rdf.Term, error) {
	if c.NS == "strdf" || c.NS == "geof" {
		return e.evalSpatialCall(c, b)
	}
	switch c.Name {
	case "bound":
		if len(c.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("stsparql: BOUND takes one variable")
		}
		v, ok := c.Args[0].(*EVar)
		if !ok {
			return rdf.Term{}, fmt.Errorf("stsparql: BOUND takes a variable")
		}
		_, bound := b[v.Name]
		return rdf.BooleanLiteral(bound), nil
	}
	args := make([]rdf.Term, len(c.Args))
	for i, a := range c.Args {
		v, err := e.evalExpr(a, b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	switch c.Name {
	case "str":
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("stsparql: STR takes one argument")
		}
		return rdf.Literal(args[0].Value), nil
	case "datatype":
		if len(args) != 1 || args[0].Kind != rdf.KindLiteral {
			return rdf.Term{}, fmt.Errorf("stsparql: DATATYPE takes one literal")
		}
		dt := args[0].Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.IRI(dt), nil
	case "lang":
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("stsparql: LANG takes one argument")
		}
		return rdf.Literal(args[0].Lang), nil
	case "isiri", "isuri":
		return rdf.BooleanLiteral(args[0].IsIRI()), nil
	case "isliteral":
		return rdf.BooleanLiteral(args[0].IsLiteral()), nil
	case "isblank":
		return rdf.BooleanLiteral(args[0].IsBlank()), nil
	case "regex":
		if len(args) < 2 {
			return rdf.Term{}, fmt.Errorf("stsparql: REGEX takes 2 or 3 arguments")
		}
		pattern := args[1].Value
		if len(args) == 3 && strings.Contains(args[2].Value, "i") {
			pattern = "(?i)" + pattern
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("stsparql: bad REGEX pattern: %w", err)
		}
		return rdf.BooleanLiteral(re.MatchString(args[0].Value)), nil
	case "strstarts":
		if len(args) != 2 {
			return rdf.Term{}, fmt.Errorf("stsparql: STRSTARTS takes two arguments")
		}
		return rdf.BooleanLiteral(strings.HasPrefix(args[0].Value, args[1].Value)), nil
	case "contains":
		if len(args) != 2 {
			return rdf.Term{}, fmt.Errorf("stsparql: CONTAINS takes two arguments")
		}
		return rdf.BooleanLiteral(strings.Contains(args[0].Value, args[1].Value)), nil
	case "abs":
		f, ok := numericValue(args[0])
		if !ok {
			return rdf.Term{}, fmt.Errorf("stsparql: ABS takes a number")
		}
		return numberLiteral(math.Abs(f), args[0]), nil
	case "floor":
		f, ok := numericValue(args[0])
		if !ok {
			return rdf.Term{}, fmt.Errorf("stsparql: FLOOR takes a number")
		}
		return rdf.IntegerLiteral(int64(math.Floor(f))), nil
	case "ceil":
		f, ok := numericValue(args[0])
		if !ok {
			return rdf.Term{}, fmt.Errorf("stsparql: CEIL takes a number")
		}
		return rdf.IntegerLiteral(int64(math.Ceil(f))), nil
	case "round":
		f, ok := numericValue(args[0])
		if !ok {
			return rdf.Term{}, fmt.Errorf("stsparql: ROUND takes a number")
		}
		return rdf.IntegerLiteral(int64(math.Round(f))), nil
	}
	return rdf.Term{}, fmt.Errorf("stsparql: unknown function %q", c.Name)
}

func (e *Engine) evalSpatialCall(c *ECall, b Binding) (rdf.Term, error) {
	// Temporal (period) functions share the strdf namespace.
	switch c.Name {
	case "during", "overlapsperiod", "beforeperiod", "periodcontains":
		return e.evalTemporalCall(c, b)
	}
	args := make([]rdf.Term, len(c.Args))
	for i, a := range c.Args {
		v, err := e.evalExpr(a, b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	geomArg := func(i int) (strdf.SpatialValue, error) {
		if i >= len(args) {
			return strdf.SpatialValue{}, fmt.Errorf("stsparql: strdf:%s missing argument %d", c.Name, i+1)
		}
		return e.parseGeom(args[i])
	}
	numArg := func(i int) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("stsparql: strdf:%s missing argument %d", c.Name, i+1)
		}
		f, ok := numericValue(args[i])
		if !ok {
			return 0, fmt.Errorf("stsparql: strdf:%s argument %d is not a number", c.Name, i+1)
		}
		return f, nil
	}
	switch c.Name {
	case "intersects", "within", "contains", "disjoint", "touches", "crosses", "overlaps", "equals", "anyinteract":
		g1, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		g2, err := geomArg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		var ok bool
		switch c.Name {
		case "intersects", "anyinteract":
			ok = geo.Intersects(g1.Geom, g2.Geom)
		case "within":
			ok = geo.Within(g1.Geom, g2.Geom)
		case "contains":
			ok = geo.Contains(g1.Geom, g2.Geom)
		case "disjoint":
			ok = geo.Disjoint(g1.Geom, g2.Geom)
		case "touches":
			ok = geo.Touches(g1.Geom, g2.Geom)
		case "crosses":
			ok = geo.Crosses(g1.Geom, g2.Geom)
		case "overlaps":
			ok = geo.Overlaps(g1.Geom, g2.Geom)
		case "equals":
			ok = geo.Equals(g1.Geom, g2.Geom)
		}
		return rdf.BooleanLiteral(ok), nil
	case "distance":
		g1, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		g2, err := geomArg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.DoubleLiteral(geo.GeodesicDistanceMeters(g1.Geom, g2.Geom)), nil
	case "area":
		g, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.DoubleLiteral(geo.AreaSquareMeters(g.Geom)), nil
	case "buffer":
		g, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		meters, err := numArg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		return strdf.Literal(geo.BufferMeters(g.Geom, meters, 8), geo.SRIDWGS84), nil
	case "envelope":
		g, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return strdf.Literal(g.Geom.Envelope().ToPolygon(), geo.SRIDWGS84), nil
	case "centroid":
		g, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return strdf.Literal(geo.Centroid(g.Geom), geo.SRIDWGS84), nil
	case "union":
		g1, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		g2, err := geomArg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		u, err := geo.Union(g1.Geom, g2.Geom)
		if err != nil {
			return rdf.Term{}, err
		}
		return strdf.Literal(u, geo.SRIDWGS84), nil
	case "intersection":
		g1, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		g2, err := geomArg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		u, err := geo.Intersection(g1.Geom, g2.Geom)
		if err != nil {
			return rdf.Term{}, err
		}
		return strdf.Literal(u, geo.SRIDWGS84), nil
	case "difference":
		g1, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		g2, err := geomArg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		u, err := geo.Difference(g1.Geom, g2.Geom)
		if err != nil {
			return rdf.Term{}, err
		}
		return strdf.Literal(u, geo.SRIDWGS84), nil
	case "transform":
		g, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		sridF, err := numArg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		out, err := geo.Transform(g.Geom, g.SRID, geo.SRID(int(sridF)))
		if err != nil {
			return rdf.Term{}, err
		}
		return strdf.Literal(out, geo.SRID(int(sridF))), nil
	case "isempty":
		g, err := geomArg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.BooleanLiteral(g.Geom.IsEmpty()), nil
	}
	return rdf.Term{}, fmt.Errorf("stsparql: unknown spatial function strdf:%s", c.Name)
}

func (e *Engine) evalTemporalCall(c *ECall, b Binding) (rdf.Term, error) {
	args := make([]rdf.Term, len(c.Args))
	for i, a := range c.Args {
		v, err := e.evalExpr(a, b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	if len(args) != 2 {
		return rdf.Term{}, fmt.Errorf("stsparql: strdf:%s takes two arguments", c.Name)
	}
	switch c.Name {
	case "periodcontains":
		p, err := strdf.ParsePeriod(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		t, ok := timeValue(args[1])
		if !ok {
			return rdf.Term{}, fmt.Errorf("stsparql: strdf:periodcontains needs a dateTime second argument")
		}
		return rdf.BooleanLiteral(p.Contains(t)), nil
	}
	p1, err := strdf.ParsePeriod(args[0])
	if err != nil {
		return rdf.Term{}, err
	}
	p2, err := strdf.ParsePeriod(args[1])
	if err != nil {
		return rdf.Term{}, err
	}
	switch c.Name {
	case "during":
		return rdf.BooleanLiteral(p1.During(p2)), nil
	case "overlapsperiod":
		return rdf.BooleanLiteral(p1.Overlaps(p2)), nil
	case "beforeperiod":
		return rdf.BooleanLiteral(p1.Before(p2)), nil
	}
	return rdf.Term{}, fmt.Errorf("stsparql: unknown temporal function strdf:%s", c.Name)
}
