package stsparql

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/persist"
	"repro/internal/rdf"
	"repro/internal/strabon"
)

// TestConcurrentQueriesAndUpdates exercises the snapshot API under `go
// test -race`: readers evaluate queries (each against an immutable
// snapshot) while writers add, remove and compact concurrently. Queries
// must never observe torn state (panic / error); counts may legitimately
// vary between snapshots.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	st := strabon.NewStore()
	for i := 0; i < 50; i++ {
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI(rdf.RDFType),
			rdf.IRI("http://ex/Thing")))
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI("http://ex/geom"),
			rdf.TypedLiteral(fmt.Sprintf("POINT (23.%02d 37.%02d)", i%100, i%100),
				"http://strdf.di.uoa.gr/ontology#WKT")))
	}
	eng := New(st)
	queries := []string{
		`SELECT ?s WHERE { ?s a <http://ex/Thing> }`,
		`PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		 SELECT ?s ?g WHERE {
			?s <http://ex/geom> ?g .
			FILTER(strdf:intersects(?g, "POLYGON ((23 37, 24 37, 24 38, 23 38, 23 37))"^^strdf:WKT))
		 }`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
		`ASK { ?s a <http://ex/Thing> }`,
	}
	const iters = 150
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := eng.Query(queries[(w+i)%len(queries)]); err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tr := rdf.NewTriple(
					rdf.IRI(fmt.Sprintf("http://ex/w%d-%d", w, i)),
					rdf.IRI(rdf.RDFType),
					rdf.IRI("http://ex/Thing"))
				st.Add(tr)
				if i%3 == 0 {
					st.Remove(tr)
				}
				if i%25 == 0 {
					st.Compact()
				}
			}
		}(w)
	}
	wg.Wait()
	// Final state must still answer deterministically.
	res := eng.MustQuery(`SELECT (COUNT(*) AS ?n) WHERE { ?s a <http://ex/Thing> }`)
	if len(res.Bindings) != 1 {
		t.Fatalf("final count query returned %d rows", len(res.Bindings))
	}
}

// TestConcurrentParallelQueriesUpdatesCheckpoints exercises the SHARED
// slot-budget pool under -race: morsel-parallel multi-pattern queries
// (thresholds forced to 1 so every operator fans out), journalled
// writes, and background WAL checkpoints all running at once against a
// durable store. GOMAXPROCS is raised so extra workers really spawn.
func TestConcurrentParallelQueriesUpdatesCheckpoints(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	prevJoin, prevFilter := morselMinJoinRows, morselMinFilterRows
	morselMinJoinRows, morselMinFilterRows = 1, 1
	defer func() { morselMinJoinRows, morselMinFilterRows = prevJoin, prevFilter }()

	mgr, st, err := persist.Open(persist.Options{Dir: t.TempDir(), SyncMode: persist.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	for i := 0; i < 80; i++ {
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI(rdf.RDFType),
			rdf.IRI("http://ex/Thing")))
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.IRI("http://ex/geom"),
			rdf.TypedLiteral(fmt.Sprintf("POINT (23.%02d 37.%02d)", i%100, i%100),
				"http://strdf.di.uoa.gr/ontology#WKT")))
	}
	eng := New(st)
	eng.MaxParallelism = 4
	queries := []string{
		`SELECT ?s ?g WHERE { ?s a <http://ex/Thing> . ?s <http://ex/geom> ?g }`,
		`PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		 SELECT ?s WHERE {
			?s a <http://ex/Thing> .
			?s <http://ex/geom> ?g .
			FILTER(strdf:intersects(?g, "POLYGON ((23 37, 24 37, 24 38, 23 38, 23 37))"^^strdf:WKT))
		 }`,
		`EXPLAIN SELECT ?s ?g WHERE { ?s a <http://ex/Thing> . ?s <http://ex/geom> ?g }`,
		`ASK { ?s a <http://ex/Thing> }`,
	}
	const iters = 60
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := eng.Query(queries[(w+i)%len(queries)]); err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tr := rdf.NewTriple(
				rdf.IRI(fmt.Sprintf("http://ex/w%d", i)),
				rdf.IRI(rdf.RDFType),
				rdf.IRI("http://ex/Thing"))
			st.Add(tr)
			if i%3 == 0 {
				st.Remove(tr)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := mgr.Checkpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if err := st.JournalErr(); err != nil {
		t.Fatalf("journal error after run: %v", err)
	}
}
