package stsparql

// Heap-vs-mapped equivalence: the 400-query randomized corpus must
// return bit-identical results (same rows, same row order) whether the
// store serves queries from heap structures or in place from a packed,
// mmap-ed snapshot file — at morsel parallelism 1, 2 and 4 — and the
// read-only workload must never force the mapped store to materialise.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/colpack"
	"repro/internal/strabon"
	"repro/internal/stsparql/corpus"
)

// mappedEquivStore round-trips src through a packed snapshot file and
// restores it mapped. The mapping stays alive for the store's
// lifetime (process exit unmaps).
func mappedEquivStore(t *testing.T, src *strabon.Store) *strabon.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.pack")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := colpack.Write(f, src.Snapshot().PackData(1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := colpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := strabon.RestorePacked(r)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHeapMappedEquivalence(t *testing.T) {
	forceTinyMorsels(t)
	rng := rand.New(rand.NewSource(corpus.Seed))
	heapSt := equivStore(rng)
	mappedSt := mappedEquivStore(t, heapSt)
	if mode := mappedSt.StorageMode(); mode != "mapped" {
		t.Fatalf("restored store mode = %q, want mapped", mode)
	}

	queries := make([]string, 400)
	for i := range queries {
		queries[i] = randQuery(rng)
	}
	for _, workers := range []int{1, 2, 4} {
		heapEng := New(heapSt)
		heapEng.MaxParallelism = workers
		mappedEng := New(mappedSt)
		mappedEng.MaxParallelism = workers
		for qi, query := range queries {
			hres, herr := heapEng.Query(query)
			mres, merr := mappedEng.Query(query)
			if (herr == nil) != (merr == nil) {
				t.Fatalf("workers=%d query #%d error mismatch:\nheap=%v\nmapped=%v\nquery:\n%s",
					workers, qi, herr, merr, query)
			}
			if herr != nil {
				continue
			}
			want := orderedBindings(hres)
			got := orderedBindings(mres)
			if len(got) != len(want) {
				t.Fatalf("workers=%d query #%d row count: heap=%d mapped=%d\nquery:\n%s",
					workers, qi, len(want), len(got), query)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("workers=%d query #%d row %d differs (order matters):\nheap:   %s\nmapped: %s\nquery:\n%s",
						workers, qi, i, want[i], got[i], query)
				}
			}
		}
	}
	// The whole read-only corpus must have run in place.
	if mode := mappedSt.StorageMode(); mode != "mapped" {
		t.Fatalf("corpus materialised the store (mode %q)", mode)
	}
}
