package stsparql

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// EXPLAIN: `EXPLAIN SELECT ...` (or ASK / CONSTRUCT) runs the statement
// through the vectorized morsel-parallel executor and returns, instead
// of the statement's rows, one plan line per physical operator — the
// join order the statistics-backed planner chose, each operator's
// estimated vs. measured cardinality, and the morsel parallelism it
// actually used. The result is an ordinary SELECT result with the single
// variable ?plan, so every endpoint serialisation (JSON, CSV, TSV) and
// strabon-shell render it without special protocol support.

// evalExplain evaluates q and renders its physical plan.
func (e *Engine) evalExplain(ctx context.Context, q *Query) (*Result, error) {
	v := newVexec(ctx, e)
	var rows int
	switch q.Form {
	case FormSelect:
		res, err := e.evalSelectVecWith(v, q)
		if err != nil {
			return nil, err
		}
		rows = len(res.Bindings)
	case FormAsk:
		tb, err := v.evalRoot(q.Where)
		if err != nil {
			return nil, err
		}
		rows = tb.n()
	case FormConstruct:
		res, err := e.evalConstructWith(v, q)
		if err != nil {
			return nil, err
		}
		rows = len(res.Triples)
	default:
		return nil, fmt.Errorf("stsparql: EXPLAIN supports SELECT, ASK and CONSTRUCT")
	}
	lines := v.explainLines(q, rows)
	out := make([]Binding, len(lines))
	for i, ln := range lines {
		out[i] = Binding{"plan": rdf.Literal(ln)}
	}
	return &Result{Vars: []string{"plan"}, Bindings: out}, nil
}

// explainLines renders the executed plan tree.
func (v *vexec) explainLines(q *Query, finalRows int) []string {
	order := "statistics"
	if v.e.DisableOptimizer {
		order = "syntactic"
	}
	executor := "vectorized(morsel-parallel)"
	if v.e.DisableVectorized {
		// EXPLAIN always runs (and describes) the vectorized executor;
		// flag the mismatch so -legacy-eval ablation users aren't misled
		// about what serves their real queries.
		executor += " [note: engine runs -legacy-eval for queries]"
	}
	lines := []string{fmt.Sprintf(
		"%s  executor=%s  workers=%d  order=%s  snapshot=v%d(%d triples)",
		formName(q.Form), executor, v.workers, order, v.snap.Version(), v.snap.NRows())}
	lines = appendPlanLines(lines, v.plan, 1)
	lines = append(lines, fmt.Sprintf("%s%-*s rows=%d", "  ", labelWidth, projectLabel(q), finalRows))
	return lines
}

// labelWidth aligns the est/rows columns across operators.
const labelWidth = 52

func appendPlanLines(lines []string, gp *groupPlan, depth int) []string {
	indent := strings.Repeat("  ", depth)
	for _, n := range gp.nodes {
		label := fmt.Sprintf("%-8s %s", n.kind, nodeLabel(n))
		stats := fmt.Sprintf("est=%-9s rows=%d", fmtEst(n.est), n.actual)
		if !n.ran {
			stats = fmt.Sprintf("est=%-9s (not executed: empty input)", fmtEst(n.est))
		}
		if n.morsels > 1 {
			stats += fmt.Sprintf("  morsels=%d", n.morsels)
		}
		lines = append(lines, fmt.Sprintf("%s%-*s %s", indent, labelWidth, truncLabel(label), stats))
		switch n.kind {
		case nodeUnion:
			for i, alt := range n.alts {
				lines = append(lines, fmt.Sprintf("%s  alt %d", indent, i+1))
				lines = appendPlanLines(lines, alt, depth+2)
			}
		case nodeOptional:
			lines = appendPlanLines(lines, n.opt, depth+1)
		}
	}
	return lines
}

func nodeLabel(n *planNode) string {
	switch n.kind {
	case nodeScan, nodeJoin:
		return patternString(n.pat)
	case nodeBind:
		return fmt.Sprintf("BIND(%s AS ?%s)", exprString(n.bind.Expr), n.bind.Var)
	case nodeFilter:
		return exprString(n.filt)
	case nodeUnion:
		return fmt.Sprintf("%d alternatives", len(n.alts))
	case nodeOptional:
		return ""
	}
	return ""
}

func projectLabel(q *Query) string {
	switch q.Form {
	case FormAsk:
		return "project  ASK"
	case FormConstruct:
		return "project  CONSTRUCT"
	}
	var parts []string
	if q.Distinct {
		parts = append(parts, "DISTINCT")
	}
	if q.SelectStar {
		parts = append(parts, "*")
	}
	for _, pr := range q.Projections {
		parts = append(parts, "?"+pr.Var)
	}
	label := "project  " + strings.Join(parts, " ")
	if len(q.OrderBy) > 0 {
		label += "  ORDER BY"
	}
	if q.Limit >= 0 {
		label += fmt.Sprintf("  LIMIT %d", q.Limit)
	}
	return truncLabel(label)
}

func formName(f QueryForm) string {
	switch f {
	case FormSelect:
		return "SELECT"
	case FormAsk:
		return "ASK"
	case FormConstruct:
		return "CONSTRUCT"
	}
	return fmt.Sprintf("form(%d)", int(f))
}

// fmtEst renders a cardinality estimate: integers above ~10, two
// significant digits below (fractional estimates are meaningful there).
func fmtEst(est float64) string {
	if est >= 9.5 {
		return strconv.FormatFloat(est, 'f', 0, 64)
	}
	return strconv.FormatFloat(est, 'g', 2, 64)
}

// truncLabel caps operator labels so huge WKT literals don't wreck the
// plan's alignment.
func truncLabel(s string) string {
	return truncRunes(s, labelWidth)
}

// truncRunes cuts s to at most max bytes WITHOUT splitting a multi-byte
// rune (Greek place names are routine in this corpus; a byte-index cut
// would emit invalid UTF-8 into the JSON/CSV serialisers).
func truncRunes(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := 0
	for i := range s {
		if i > max-len("…") {
			break
		}
		cut = i
	}
	return s[:cut] + "…"
}

func patTermString(pt PatTerm) string {
	if pt.IsVar() {
		return "?" + pt.Var
	}
	return termString(pt.Term)
}

// termString is rdf.Term rendering with long spatial literals elided.
func termString(t rdf.Term) string {
	return truncRunes(t.String(), 40)
}

func patternString(pat Pattern) string {
	p := patTermString(pat.P)
	if !pat.P.IsVar() && pat.P.Term.Kind == rdf.KindIRI && pat.P.Term.Value == rdf.RDFType {
		p = "a" // the SPARQL rdf:type shorthand keeps plan lines readable
	}
	return patTermString(pat.S) + " " + p + " " + patTermString(pat.O)
}

// exprString renders a FILTER/BIND expression in SPARQL-ish infix form.
func exprString(ex Expression) string {
	switch t := ex.(type) {
	case *EVar:
		return "?" + t.Name
	case *ELit:
		return termString(t.Term)
	case *EUnary:
		return t.Op + exprString(t.X)
	case *EBinary:
		return "(" + exprString(t.Left) + " " + t.Op + " " + exprString(t.Right) + ")"
	case *ECall:
		name := t.Name
		if t.NS != "" {
			name = t.NS + ":" + name
		}
		if t.Star {
			return name + "(*)"
		}
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = exprString(a)
		}
		return name + "(" + strings.Join(args, ", ") + ")"
	}
	return "?expr"
}
