package stsparql

import "repro/internal/rdf"

// QueryForm tags the statement kind.
type QueryForm int

// Statement forms.
const (
	FormSelect QueryForm = iota + 1
	FormAsk
	FormConstruct
	FormInsertData
	FormDeleteData
	FormModify // DELETE/INSERT ... WHERE
)

// PatTerm is a pattern position: either a concrete RDF term or a variable.
type PatTerm struct {
	Var  string // non-empty when this position is a variable
	Term rdf.Term
}

// IsVar reports whether the position is a variable.
func (p PatTerm) IsVar() bool { return p.Var != "" }

// Pattern is one triple pattern.
type Pattern struct {
	S, P, O PatTerm
}

// Vars returns the variable names used in the pattern.
func (p Pattern) Vars() []string {
	var out []string
	for _, t := range []PatTerm{p.S, p.P, p.O} {
		if t.IsVar() {
			out = append(out, t.Var)
		}
	}
	return out
}

// Group is a graph pattern: basic patterns, filters, binds, optional
// sub-groups and unions of alternative sub-groups.
type Group struct {
	Patterns  []Pattern
	Filters   []Expression
	Optionals []*Group
	Binds     []BindClause
	// Unions holds { A } UNION { B } ... blocks: each entry is the list
	// of alternatives of one block.
	Unions [][]*Group
}

// BindClause is BIND(expr AS ?v).
type BindClause struct {
	Expr Expression
	Var  string
}

// Expression is a FILTER/BIND/projection expression.
type Expression interface{ sexpr() }

// EVar references a variable.
type EVar struct{ Name string }

// ELit is a constant term.
type ELit struct{ Term rdf.Term }

// EBinary applies && || = != < <= > >= + - * /.
type EBinary struct {
	Op          string
	Left, Right Expression
}

// EUnary applies ! or unary minus.
type EUnary struct {
	Op string
	X  Expression
}

// ECall invokes a builtin or strdf: function; Name is the resolved,
// lower-cased local name ("intersects", "bound", "regex", ...) and NS the
// namespace ("strdf" or "" for SPARQL builtins).
type ECall struct {
	NS   string
	Name string
	Args []Expression
	Star bool // COUNT(*)
}

func (*EVar) sexpr()    {}
func (*ELit) sexpr()    {}
func (*EBinary) sexpr() {}
func (*EUnary) sexpr()  {}
func (*ECall) sexpr()   {}

// Projection is one SELECT item: a plain variable or (expr AS ?v).
type Projection struct {
	Var  string
	Expr Expression // nil for plain variables
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expression
	Desc bool
}

// Query is a parsed stSPARQL statement.
type Query struct {
	Form     QueryForm
	Prefixes map[string]string
	// Explain marks an EXPLAIN-prefixed statement: evaluation returns
	// the executed physical plan (one ?plan row per operator, with
	// estimated vs. measured cardinalities) instead of the result rows.
	Explain bool
	// Select parts.
	Distinct    bool
	SelectStar  bool
	Projections []Projection
	Where       *Group
	// GroupBy lists grouping variables for aggregate queries.
	GroupBy []string
	OrderBy []OrderKey
	Limit   int // -1 absent
	Offset  int
	// Construct/Modify templates.
	ConstructTemplate []Pattern
	InsertTemplate    []Pattern
	DeleteTemplate    []Pattern
	// Ground data for INSERT DATA / DELETE DATA.
	Data []rdf.Triple
}
