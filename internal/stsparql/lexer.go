// Package stsparql implements the stSPARQL query and update language of
// the paper (SPARQL 1.1 extended with the stRDF spatial vocabulary),
// evaluated over a Strabon store (internal/strabon).
//
// Supported surface:
//
//	PREFIX pfx: <iri>
//	SELECT [DISTINCT] ?v ... | * | (expr AS ?v) ...
//	  WHERE { patterns FILTER(...) OPTIONAL { ... } }
//	  [ORDER BY [DESC(?v)|?v] ...] [LIMIT n] [OFFSET n]
//	ASK WHERE { ... }
//	CONSTRUCT { template } WHERE { ... }
//	INSERT DATA { triples }      DELETE DATA { triples }
//	DELETE { template } INSERT { template } WHERE { pattern }
//	EXPLAIN <read statement>   — returns the physical plan instead of rows
//
// FILTER expressions include comparisons, && || !, arithmetic, BOUND, STR,
// DATATYPE, REGEX, isIRI/isLiteral/isBlank, and the stRDF spatial
// functions (strdf:intersects, strdf:within, strdf:contains,
// strdf:disjoint, strdf:touches, strdf:crosses, strdf:overlaps,
// strdf:equals, strdf:distance, strdf:area, strdf:buffer, strdf:union,
// strdf:intersection, strdf:difference, strdf:envelope, strdf:centroid,
// strdf:transform). Temporal filters use the strdf:period relations
// (strdf:during, strdf:overlapsPeriod, strdf:beforePeriod).
//
// The evaluator compiles each statement into a physical plan ordered by
// per-snapshot statistics, pushes spatial filters into the store's
// R-tree, and executes the expensive operators morsel-parallel on the
// process-wide worker pool (internal/parallel); EXPLAIN renders the
// executed plan. See docs/performance.md and docs/stsparql.md.
package stsparql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tKeyword
	tVar      // ?name
	tIRI      // <...>
	tPrefixed // pfx:local
	tString   // "..." (lexical form, unescaped)
	tNumber
	tSymbol
	tBlank // _:label
	tA     // the 'a' keyword
)

type tok struct {
	kind tokKind
	text string
	pos  int
	// For tString: the raw datatype / lang captured by the lexer.
	lang, dtIRI, dtPrefixed string
}

var sparqlKeywords = map[string]bool{
	"SELECT": true, "WHERE": true, "FILTER": true, "PREFIX": true,
	"DISTINCT": true, "ORDER": true, "BY": true, "LIMIT": true,
	"OFFSET": true, "ASK": true, "CONSTRUCT": true, "INSERT": true,
	"DELETE": true, "DATA": true, "OPTIONAL": true, "UNION": true,
	"ASC": true, "DESC": true, "AS": true, "BIND": true,
	"TRUE": true, "FALSE": true, "NOT": true, "EXISTS": true,
	"COUNT": true, "GROUP": true,
}

type sLexer struct {
	src  string
	pos  int
	toks []tok
}

func lexQuery(src string) ([]tok, error) {
	l := &sLexer{src: src}
	for {
		l.skip()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, tok{kind: tEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '?' || c == '$':
			l.pos++
			for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start+1 {
				return nil, fmt.Errorf("stsparql: empty variable name at %d", start)
			}
			l.toks = append(l.toks, tok{kind: tVar, text: l.src[start+1 : l.pos], pos: start})
		case c == '<':
			// '<' starts an IRI only when a '>' follows with no intervening
			// whitespace or quote (SPARQL IRIREF); otherwise it is the
			// less-than operator.
			end := -1
			for i := l.pos + 1; i < len(l.src); i++ {
				ch := l.src[i]
				if ch == '>' {
					end = i - l.pos
					break
				}
				if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' || ch == '"' || ch == '<' {
					break
				}
			}
			if end < 0 {
				if !l.lexSymbol() {
					return nil, fmt.Errorf("stsparql: unexpected '<' at %d", start)
				}
				continue
			}
			l.toks = append(l.toks, tok{kind: tIRI, text: l.src[l.pos+1 : l.pos+end], pos: start})
			l.pos += end + 1
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '_' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':':
			l.pos += 2
			ns := l.pos
			for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, tok{kind: tBlank, text: l.src[ns:l.pos], pos: start})
		case isNameStart(c):
			for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == ':' || l.src[l.pos] == '.') {
				l.pos++
			}
			word := l.src[start:l.pos]
			// Trailing dots belong to statement punctuation.
			for strings.HasSuffix(word, ".") {
				word = word[:len(word)-1]
				l.pos--
			}
			up := strings.ToUpper(word)
			switch {
			case word == "a":
				l.toks = append(l.toks, tok{kind: tA, text: "a", pos: start})
			case strings.Contains(word, ":"):
				l.toks = append(l.toks, tok{kind: tPrefixed, text: word, pos: start})
			case sparqlKeywords[up]:
				l.toks = append(l.toks, tok{kind: tKeyword, text: up, pos: start})
			default:
				// Bare function names (BOUND, REGEX, STR...) reach the
				// parser as keywords-by-shape.
				l.toks = append(l.toks, tok{kind: tKeyword, text: up, pos: start})
			}
		case c >= '0' && c <= '9' || (c == '-' || c == '+') && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		default:
			if !l.lexSymbol() {
				return nil, fmt.Errorf("stsparql: unexpected character %q at %d", string(c), l.pos)
			}
		}
	}
}

func (l *sLexer) skip() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *sLexer) lexString() error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return fmt.Errorf("stsparql: unterminated string at %d", start)
		}
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return fmt.Errorf("stsparql: unknown escape \\%c at %d", l.src[l.pos+1], l.pos)
			}
			l.pos += 2
			continue
		}
		if c == '"' {
			l.pos++
			break
		}
		b.WriteByte(c)
		l.pos++
	}
	t := tok{kind: tString, text: b.String(), pos: start}
	// Language tag or datatype.
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		ls := l.pos + 1
		l.pos++
		for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == '-') {
			l.pos++
		}
		t.lang = l.src[ls:l.pos]
	} else if strings.HasPrefix(l.src[l.pos:], "^^") {
		l.pos += 2
		if l.pos < len(l.src) && l.src[l.pos] == '<' {
			end := strings.IndexByte(l.src[l.pos:], '>')
			if end < 0 {
				return fmt.Errorf("stsparql: unterminated datatype IRI at %d", l.pos)
			}
			t.dtIRI = l.src[l.pos+1 : l.pos+end]
			l.pos += end + 1
		} else {
			ds := l.pos
			for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == ':') {
				l.pos++
			}
			t.dtPrefixed = l.src[ds:l.pos]
			if t.dtPrefixed == "" {
				return fmt.Errorf("stsparql: empty datatype after ^^ at %d", l.pos)
			}
		}
	}
	l.toks = append(l.toks, t)
	return nil
}

func (l *sLexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && !seenExp && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && !seenExp {
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			continue
		}
		break
	}
	l.toks = append(l.toks, tok{kind: tNumber, text: l.src[start:l.pos], pos: start})
}

func (l *sLexer) lexSymbol() bool {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		switch two {
		case "&&", "||", "<=", ">=", "!=":
			l.toks = append(l.toks, tok{kind: tSymbol, text: two, pos: l.pos})
			l.pos += 2
			return true
		}
	}
	c := l.src[l.pos]
	switch c {
	case '{', '}', '(', ')', '.', ';', ',', '*', '+', '-', '/', '=', '<', '>', '!':
		l.toks = append(l.toks, tok{kind: tSymbol, text: string(c), pos: l.pos})
		l.pos++
		return true
	}
	return false
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9'
}
