package stsparql

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/strabon"
)

func TestUnion(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?x WHERE {
			{ ?x a noa:Hotspot } UNION { ?x a noa:Town }
		} ORDER BY ?x`)
	if len(res.Bindings) != 5 { // 3 hotspots + 2 towns
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	// Triple union.
	res3 := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?x WHERE {
			{ ?x a noa:Hotspot } UNION { ?x a noa:Town } UNION { ?x a noa:Forest }
		}`)
	if len(res3.Bindings) != 6 {
		t.Fatalf("triple union rows = %d", len(res3.Bindings))
	}
}

func TestUnionWithSharedPattern(t *testing.T) {
	e := New(fixtureStore())
	// The union joins against an outer pattern through ?x.
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?x ?c WHERE {
			?x noa:hasConfidence ?c .
			{ ?x a noa:Hotspot } UNION { ?x a noa:Town }
			FILTER(?c > 0.8)
		}`)
	// Towns have no confidence; only the two high-confidence hotspots.
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
}

func TestBareNestedGroup(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?x WHERE { { ?x a noa:Hotspot } }`)
	if len(res.Bindings) != 3 {
		t.Fatalf("nested group rows = %d", len(res.Bindings))
	}
}

func TestGroupByAggregates(t *testing.T) {
	st := strabon.NewStore()
	add := func(s, sensor string, conf float64) {
		st.Add(rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(noaNS+"inSensor"), rdf.Literal(sensor)))
		st.Add(rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(noaNS+"hasConfidence"), rdf.DoubleLiteral(conf)))
	}
	add("a", "SEVIRI", 0.9)
	add("b", "SEVIRI", 0.7)
	add("c", "MODIS", 0.5)
	e := New(st)
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?s (COUNT(*) AS ?n) (AVG(?c) AS ?m) (MAX(?c) AS ?hi) (MIN(?c) AS ?lo) (SUM(?c) AS ?sum)
		WHERE { ?x noa:inSensor ?s . ?x noa:hasConfidence ?c }
		GROUP BY ?s ORDER BY ?s`)
	if len(res.Bindings) != 2 {
		t.Fatalf("groups = %d", len(res.Bindings))
	}
	modis := res.Bindings[0]
	seviri := res.Bindings[1]
	if modis["s"].Value != "MODIS" || modis["n"].Value != "1" {
		t.Fatalf("modis group = %v", modis)
	}
	if seviri["n"].Value != "2" {
		t.Fatalf("seviri count = %v", seviri["n"])
	}
	if seviri["m"].Value != "0.8" {
		t.Fatalf("seviri avg = %v", seviri["m"])
	}
	if seviri["hi"].Value != "0.9" || seviri["lo"].Value != "0.7" {
		t.Fatalf("seviri min/max = %v %v", seviri["lo"], seviri["hi"])
	}
	if seviri["sum"].Value != "1.6" {
		t.Fatalf("seviri sum = %v", seviri["sum"])
	}
}

func TestGroupByErrors(t *testing.T) {
	e := New(fixtureStore())
	// Projecting a non-grouped plain variable fails.
	if _, err := e.Query(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?x (COUNT(*) AS ?n) WHERE { ?x noa:hasConfidence ?c } GROUP BY ?c`); err == nil {
		t.Fatal("non-grouped projection should fail")
	}
	// GROUP BY with no variable fails at parse.
	if _, err := ParseQuery(`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY`); err == nil {
		t.Fatal("empty GROUP BY should fail")
	}
	// SUM over a non-number fails.
	if _, err := e.Query(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT (SUM(?x) AS ?n) WHERE { ?x a noa:Hotspot }`); err == nil {
		t.Fatal("SUM over IRIs should fail")
	}
}

func TestAggregateOverEmptyGroup(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT (COUNT(*) AS ?n) (SUM(?c) AS ?s) WHERE {
			?x a noa:Volcano . ?x noa:hasConfidence ?c
		}`)
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if res.Bindings[0]["n"].Value != "0" {
		t.Fatal("empty count")
	}
	if _, bound := res.Bindings[0]["s"]; bound {
		t.Fatal("SUM over empty group should be unbound")
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	st := strabon.NewStore()
	add := func(s, sensor, day string) {
		st.Add(rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(noaNS+"inSensor"), rdf.Literal(sensor)))
		st.Add(rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(noaNS+"onDay"), rdf.Literal(day)))
	}
	add("a", "SEVIRI", "mon")
	add("b", "SEVIRI", "mon")
	add("c", "SEVIRI", "tue")
	add("d", "MODIS", "mon")
	e := New(st)
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?s ?d (COUNT(*) AS ?n) WHERE {
			?x noa:inSensor ?s . ?x noa:onDay ?d
		} GROUP BY ?s ?d ORDER BY DESC(?n)`)
	if len(res.Bindings) != 3 {
		t.Fatalf("groups = %d", len(res.Bindings))
	}
	if res.Bindings[0]["n"].Value != "2" {
		t.Fatalf("largest group = %v", res.Bindings[0])
	}
}
