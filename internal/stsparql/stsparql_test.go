package stsparql

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/strabon"
)

const exNS = "http://example.org/"
const noaNS = "http://teleios.di.uoa.gr/noa#"

// fixtureStore builds a small catalogue: hotspots with geometries and
// confidences, towns, and one forest polygon.
func fixtureStore() *strabon.Store {
	st := strabon.NewStore()
	add := func(s, p string, o rdf.Term) {
		st.Add(rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(noaNS+p), o))
	}
	typ := func(s, class string) {
		st.Add(rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(rdf.RDFType), rdf.IRI(noaNS+class)))
	}
	// Three hotspots.
	typ("h1", "Hotspot")
	add("h1", "hasGeometry", rdf.WKTLiteral("POINT (23.0 38.0)", 4326))
	add("h1", "hasConfidence", rdf.DoubleLiteral(0.9))
	typ("h2", "Hotspot")
	add("h2", "hasGeometry", rdf.WKTLiteral("POINT (24.5 38.5)", 4326))
	add("h2", "hasConfidence", rdf.DoubleLiteral(0.6))
	typ("h3", "Hotspot")
	add("h3", "hasGeometry", rdf.WKTLiteral("POINT (26.0 36.5)", 4326))
	add("h3", "hasConfidence", rdf.DoubleLiteral(0.95))
	// Towns.
	typ("townA", "Town")
	add("townA", "hasGeometry", rdf.WKTLiteral("POINT (23.01 38.01)", 4326))
	st.Add(rdf.NewTriple(rdf.IRI(exNS+"townA"), rdf.IRI(rdf.RDFSLabel), rdf.Literal("Alpha")))
	typ("townB", "Town")
	add("townB", "hasGeometry", rdf.WKTLiteral("POINT (25.5 39.5)", 4326))
	st.Add(rdf.NewTriple(rdf.IRI(exNS+"townB"), rdf.IRI(rdf.RDFSLabel), rdf.Literal("Bravo")))
	// A forest polygon containing h2.
	typ("forest1", "Forest")
	add("forest1", "hasGeometry", rdf.WKTLiteral("POLYGON ((24 38, 25 38, 25 39, 24 39, 24 38))", 4326))
	return st
}

func TestSelectBasic(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?h WHERE { ?h a noa:Hotspot }`)
	if len(res.Bindings) != 3 {
		t.Fatalf("hotspots = %d", len(res.Bindings))
	}
	if res.Vars[0] != "h" {
		t.Fatalf("vars = %v", res.Vars)
	}
}

func TestSelectJoinAndFilter(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?h ?c WHERE {
			?h a noa:Hotspot .
			?h noa:hasConfidence ?c .
			FILTER(?c >= 0.8)
		} ORDER BY DESC(?c)`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if res.Bindings[0]["h"].Value != exNS+"h3" {
		t.Fatalf("order: %v", res.Bindings[0]["h"])
	}
}

func TestSpatialIntersectsFilter(t *testing.T) {
	e := New(fixtureStore())
	// Which hotspots fall in the forest polygon?
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?h WHERE {
			?h a noa:Hotspot .
			?h noa:hasGeometry ?g .
			FILTER(strdf:intersects(?g, "POLYGON ((24 38, 25 38, 25 39, 24 39, 24 38))"^^strdf:WKT))
		}`)
	if len(res.Bindings) != 1 || res.Bindings[0]["h"].Value != exNS+"h2" {
		t.Fatalf("bindings = %v", res.Bindings)
	}
}

func TestSpatialJoinTwoVars(t *testing.T) {
	e := New(fixtureStore())
	// Hotspots within forests: var-var spatial join.
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?h ?f WHERE {
			?h a noa:Hotspot .
			?h noa:hasGeometry ?hg .
			?f a noa:Forest .
			?f noa:hasGeometry ?fg .
			FILTER(strdf:within(?hg, ?fg))
		}`)
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if res.Bindings[0]["f"].Value != exNS+"forest1" {
		t.Fatal("join result")
	}
}

func TestDistanceQuery(t *testing.T) {
	e := New(fixtureStore())
	// The paper's flagship pattern: fire within 2 km of a site (townA is
	// ~1.4 km from h1).
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?h ?t WHERE {
			?h a noa:Hotspot .
			?h noa:hasGeometry ?hg .
			?t a noa:Town .
			?t noa:hasGeometry ?tg .
			FILTER(strdf:distance(?hg, ?tg) < 2000)
		}`)
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if res.Bindings[0]["h"].Value != exNS+"h1" || res.Bindings[0]["t"].Value != exNS+"townA" {
		t.Fatalf("pair = %v", res.Bindings[0])
	}
}

func TestSpatialPushdownEquivalence(t *testing.T) {
	st := fixtureStore()
	withIdx := New(st)
	resA := withIdx.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?h WHERE {
			?h noa:hasGeometry ?g .
			FILTER(strdf:intersects(?g, "POLYGON ((22 37, 24 37, 24 39, 22 39, 22 37))"^^strdf:WKT))
		}`)
	noPush := New(st)
	noPush.DisableSpatialPushdown = true
	noPush.DisableOptimizer = true
	resB := noPush.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?h WHERE {
			?h noa:hasGeometry ?g .
			FILTER(strdf:intersects(?g, "POLYGON ((22 37, 24 37, 24 39, 22 39, 22 37))"^^strdf:WKT))
		}`)
	if len(resA.Bindings) != len(resB.Bindings) {
		t.Fatalf("pushdown changes results: %d vs %d", len(resA.Bindings), len(resB.Bindings))
	}
	// h1, townA, and forest1 (which shares the x=24 edge with the box).
	if len(resA.Bindings) != 3 {
		t.Fatalf("rows = %d", len(resA.Bindings))
	}
}

func TestAsk(t *testing.T) {
	e := New(fixtureStore())
	yes := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		ASK WHERE { ?h a noa:Hotspot }`)
	if !yes.Bool {
		t.Fatal("ASK should be true")
	}
	no := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		ASK WHERE { ?h a noa:Volcano }`)
	if no.Bool {
		t.Fatal("ASK should be false")
	}
}

func TestConstruct(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX ex: <http://example.org/>
		CONSTRUCT { ?h a ex:ConfirmedFire } WHERE {
			?h a noa:Hotspot .
			?h noa:hasConfidence ?c .
			FILTER(?c > 0.8)
		}`)
	if len(res.Triples) != 2 {
		t.Fatalf("constructed = %d", len(res.Triples))
	}
	for _, tr := range res.Triples {
		if tr.O.Value != exNS+"ConfirmedFire" {
			t.Fatalf("triple = %v", tr)
		}
	}
}

func TestInsertDeleteData(t *testing.T) {
	st := strabon.NewStore()
	e := New(st)
	res := e.MustQuery(`
		PREFIX ex: <http://example.org/>
		INSERT DATA {
			ex:a a ex:Thing .
			ex:a ex:score 5 .
		}`)
	if res.Affected != 2 || st.Len() != 2 {
		t.Fatalf("inserted = %d, len = %d", res.Affected, st.Len())
	}
	res2 := e.MustQuery(`
		PREFIX ex: <http://example.org/>
		DELETE DATA { ex:a ex:score 5 . }`)
	if res2.Affected != 1 || st.Len() != 1 {
		t.Fatalf("deleted = %d, len = %d", res2.Affected, st.Len())
	}
	// Deleting absent data affects 0.
	res3 := e.MustQuery(`
		PREFIX ex: <http://example.org/>
		DELETE DATA { ex:ghost ex:p ex:q . }`)
	if res3.Affected != 0 {
		t.Fatal("ghost delete")
	}
}

func TestModifyDeleteInsertWhere(t *testing.T) {
	e := New(fixtureStore())
	// Reclassify low-confidence hotspots (the refinement idiom).
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX ex: <http://example.org/>
		DELETE { ?h a noa:Hotspot }
		INSERT { ?h a noa:RejectedHotspot }
		WHERE {
			?h a noa:Hotspot .
			?h noa:hasConfidence ?c .
			FILTER(?c < 0.8)
		}`)
	if res.Affected != 2 { // one delete + one insert
		t.Fatalf("affected = %d", res.Affected)
	}
	left := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?h WHERE { ?h a noa:Hotspot }`)
	if len(left.Bindings) != 2 {
		t.Fatalf("remaining hotspots = %d", len(left.Bindings))
	}
	rejected := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?h WHERE { ?h a noa:RejectedHotspot }`)
	if len(rejected.Bindings) != 1 || rejected.Bindings[0]["h"].Value != exNS+"h2" {
		t.Fatalf("rejected = %v", rejected.Bindings)
	}
}

func TestDeleteWhereShorthand(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		DELETE WHERE { ?t a noa:Town }`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	if e.MustQuery(`PREFIX noa: <http://teleios.di.uoa.gr/noa#> ASK WHERE { ?t a noa:Town }`).Bool {
		t.Fatal("towns should be gone")
	}
}

func TestOptional(t *testing.T) {
	e := New(fixtureStore())
	// Towns have labels; hotspots do not.
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?x ?label WHERE {
			?x noa:hasGeometry ?g .
			OPTIONAL { ?x rdfs:label ?label }
		}`)
	if len(res.Bindings) != 6 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	labelled := 0
	for _, b := range res.Bindings {
		if _, ok := b["label"]; ok {
			labelled++
		}
	}
	if labelled != 2 {
		t.Fatalf("labelled = %d", labelled)
	}
}

func TestBindAndProjectionExpr(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?h ?pct WHERE {
			?h noa:hasConfidence ?c .
			BIND(?c * 100 AS ?pct)
			FILTER(?pct > 80)
		}`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	// Projection expression form.
	res2 := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT (?c * 2 AS ?double) WHERE { <http://example.org/h1> noa:hasConfidence ?c }`)
	if v := res2.Bindings[0]["double"]; v.Value != "1.8" {
		t.Fatalf("double = %v", v)
	}
}

func TestCount(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT (COUNT(*) AS ?n) WHERE { ?h a noa:Hotspot }`)
	if res.Bindings[0]["n"].Value != "3" {
		t.Fatalf("count = %v", res.Bindings[0]["n"])
	}
	res2 := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT (COUNT(?label) AS ?n) WHERE {
			?x noa:hasGeometry ?g . OPTIONAL { ?x rdfs:label ?label }
		}`)
	if res2.Bindings[0]["n"].Value != "2" {
		t.Fatalf("count bound = %v", res2.Bindings[0]["n"])
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT DISTINCT ?class WHERE { ?x a ?class } ORDER BY ?class`)
	if len(res.Bindings) != 3 { // Forest, Hotspot, Town
		t.Fatalf("classes = %d", len(res.Bindings))
	}
	lim := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?h WHERE { ?h a noa:Hotspot } ORDER BY ?h LIMIT 2 OFFSET 1`)
	if len(lim.Bindings) != 2 || lim.Bindings[0]["h"].Value != exNS+"h2" {
		t.Fatalf("page = %v", lim.Bindings)
	}
}

func TestBuiltinFunctions(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?x WHERE { ?x rdfs:label ?l . FILTER(REGEX(?l, "^Al")) }`)
	if len(res.Bindings) != 1 {
		t.Fatalf("regex rows = %d", len(res.Bindings))
	}
	res2 := e.MustQuery(`
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?x WHERE { ?x rdfs:label ?l . FILTER(STRSTARTS(STR(?l), "Br")) }`)
	if len(res2.Bindings) != 1 {
		t.Fatalf("strstarts rows = %d", len(res2.Bindings))
	}
	res3 := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?x WHERE { ?x noa:hasConfidence ?c . FILTER(isLiteral(?c) && !isIRI(?c)) }`)
	if len(res3.Bindings) != 3 {
		t.Fatalf("isLiteral rows = %d", len(res3.Bindings))
	}
}

func TestSpatialConstructors(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT (strdf:buffer(?g, 2000) AS ?zone) (strdf:area(strdf:buffer(?g, 2000)) AS ?a)
		WHERE { <http://example.org/h1> noa:hasGeometry ?g }`)
	if len(res.Bindings) != 1 {
		t.Fatal("rows")
	}
	zone := res.Bindings[0]["zone"]
	if !zone.IsSpatial() {
		t.Fatalf("zone = %v", zone)
	}
	// Area of a 2km-radius disc is ~12.6 km^2.
	var area float64
	fmt.Sscanf(res.Bindings[0]["a"].Value, "%g", &area)
	if area < 10e6 || area > 14e6 {
		t.Fatalf("area = %g", area)
	}
}

func TestSpatialDifferenceUpdate(t *testing.T) {
	// The Scenario 2 idiom: replace a geometry by its difference with a
	// mask polygon.
	st := strabon.NewStore()
	st.Add(rdf.NewTriple(rdf.IRI(exNS+"h"), rdf.IRI(noaNS+"hasGeometry"),
		rdf.WKTLiteral("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", 4326)))
	e := New(st)
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		DELETE { ?h noa:hasGeometry ?g }
		INSERT { ?h noa:hasGeometry ?ng }
		WHERE {
			?h noa:hasGeometry ?g .
			BIND(strdf:difference(?g, "POLYGON ((2 -1, 5 -1, 5 5, 2 5, 2 -1))"^^strdf:WKT) AS ?ng)
		}`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?g WHERE { ?h noa:hasGeometry ?g }`)
	if len(got.Bindings) != 1 {
		t.Fatalf("geometries = %d", len(got.Bindings))
	}
	// The remaining geometry is the left half (area 8 in degrees^2).
	v := got.Bindings[0]["g"]
	if !v.IsSpatial() {
		t.Fatal("not spatial")
	}
}

func TestPeriodFilters(t *testing.T) {
	st := strabon.NewStore()
	add := func(s string, start, end string) {
		st.Add(rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(noaNS+"validTime"),
			rdf.TypedLiteral("["+start+", "+end+")", "http://strdf.di.uoa.gr/ontology#period")))
	}
	add("morning", "2007-08-25T06:00:00Z", "2007-08-25T12:00:00Z")
	add("noon", "2007-08-25T11:00:00Z", "2007-08-25T13:00:00Z")
	add("evening", "2007-08-25T18:00:00Z", "2007-08-25T22:00:00Z")
	e := New(st)
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?x WHERE {
			?x noa:validTime ?t .
			FILTER(strdf:overlapsPeriod(?t, "[2007-08-25T11:30:00Z, 2007-08-25T11:45:00Z)"^^strdf:period))
		}`)
	if len(res.Bindings) != 2 {
		t.Fatalf("overlapping = %d", len(res.Bindings))
	}
	res2 := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?x WHERE {
			?x noa:validTime ?t .
			FILTER(strdf:during(?t, "[2007-08-25T00:00:00Z, 2007-08-26T00:00:00Z)"^^strdf:period))
		}`)
	if len(res2.Bindings) != 3 {
		t.Fatalf("during = %d", len(res2.Bindings))
	}
}

func TestOptimizerEquivalence(t *testing.T) {
	st := fixtureStore()
	q := `
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?h ?c WHERE {
			?h noa:hasConfidence ?c .
			?h a noa:Hotspot .
			?h noa:hasGeometry ?g .
		} ORDER BY ?h`
	opt := New(st)
	unopt := New(st)
	unopt.DisableOptimizer = true
	a := opt.MustQuery(q)
	b := unopt.MustQuery(q)
	if len(a.Bindings) != len(b.Bindings) {
		t.Fatalf("optimizer changes results: %d vs %d", len(a.Bindings), len(b.Bindings))
	}
	for i := range a.Bindings {
		if a.Bindings[i]["h"] != b.Bindings[i]["h"] {
			t.Fatal("optimizer changes order-normalised results")
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		``,
		`SELECT WHERE { ?s ?p ?o }`,
		`SELECT ?s { ?s ?p }`,               // incomplete triple
		`SELECT ?s WHERE { ?s ex:p ?o }`,    // unknown prefix
		`SELECT ?s WHERE { ?s ?p ?o`,        // unterminated group
		`INSERT DATA { ?v <p> <q> . }`,      // variable in ground data
		`SELECT ?s WHERE { "lit" ?p ?o . }`, // fine actually? literal subject is illegal in RDF but pattern-wise we allow... keep as error-free?
	} {
		if q == `SELECT ?s WHERE { "lit" ?p ?o . }` {
			continue // literal subjects parse; the store simply never matches
		}
		if _, err := ParseQuery(q); err == nil {
			t.Errorf("ParseQuery(%q) succeeded", q)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	e := New(fixtureStore())
	if _, err := e.Query(`SELECT ?s WHERE { ?s <p> ?o . FILTER(nosuchfunc(?o)) }`); err != nil {
		// Filters that always error simply drop rows; the query itself
		// succeeds with zero results.
		t.Fatalf("filter errors should not abort: %v", err)
	}
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?h WHERE { ?h a noa:Hotspot . FILTER(?h + 1 > 0) }`)
	if len(res.Bindings) != 0 {
		t.Fatal("type-error filter should drop all rows")
	}
}

func TestUnknownConstantsNoMatch(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`SELECT ?o WHERE { <http://nowhere/x> <http://nowhere/p> ?o }`)
	if len(res.Bindings) != 0 {
		t.Fatal("unknown constants should yield empty results")
	}
}

func TestSelectStar(t *testing.T) {
	e := New(fixtureStore())
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT * WHERE { ?h noa:hasConfidence ?c }`)
	if len(res.Vars) != 2 {
		t.Fatalf("vars = %v", res.Vars)
	}
}

func TestSharedVariableJoin(t *testing.T) {
	// Same var in two positions of one pattern: ?x ?p ?x matches nothing
	// in the fixture; self-join sanity.
	e := New(fixtureStore())
	res := e.MustQuery(`SELECT ?x WHERE { ?x ?p ?x }`)
	if len(res.Bindings) != 0 {
		t.Fatalf("self-matching rows = %d", len(res.Bindings))
	}
}
