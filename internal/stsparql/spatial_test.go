package stsparql

import (
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/strabon"
	"repro/internal/strdf"
)

// Coverage for the remaining strdf: function surface.

func spatialFixture() *Engine {
	st := strabon.NewStore()
	add := func(name, wkt string) {
		st.Add(rdf.NewTriple(rdf.IRI(exNS+name), rdf.IRI(noaNS+"hasGeometry"),
			rdf.WKTLiteral(wkt, 4326)))
	}
	add("square", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	add("overlapping", "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	add("touching", "POLYGON ((4 0, 8 0, 8 4, 4 4, 4 0))")
	add("crossline", "LINESTRING (-1 2, 5 2)")
	add("farpoint", "POINT (100 0)")
	return New(st)
}

func askSpatial(t *testing.T, e *Engine, fn, a, b string) bool {
	t.Helper()
	res, err := e.Query(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		ASK WHERE {
			<http://example.org/` + a + `> noa:hasGeometry ?g1 .
			<http://example.org/` + b + `> noa:hasGeometry ?g2 .
			FILTER(strdf:` + fn + `(?g1, ?g2))
		}`)
	if err != nil {
		t.Fatalf("strdf:%s: %v", fn, err)
	}
	return res.Bool
}

func TestSpatialPredicateMatrix(t *testing.T) {
	e := spatialFixture()
	cases := []struct {
		fn, a, b string
		want     bool
	}{
		{"overlaps", "square", "overlapping", true},
		{"overlaps", "square", "touching", false},
		{"touches", "square", "touching", true},
		{"touches", "square", "overlapping", false},
		{"crosses", "crossline", "square", true},
		{"crosses", "crossline", "farpoint", false},
		{"disjoint", "square", "farpoint", true},
		{"equals", "square", "square", true},
		{"equals", "square", "overlapping", false},
		{"anyinteract", "square", "overlapping", true},
	}
	for _, c := range cases {
		if got := askSpatial(t, e, c.fn, c.a, c.b); got != c.want {
			t.Errorf("strdf:%s(%s, %s) = %v, want %v", c.fn, c.a, c.b, got, c.want)
		}
	}
}

func TestSpatialConstructorsFull(t *testing.T) {
	e := spatialFixture()
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT (strdf:envelope(?g) AS ?env) (strdf:centroid(?g) AS ?c)
		       (strdf:union(?g, ?g2) AS ?u) (strdf:intersection(?g, ?g2) AS ?i)
		WHERE {
			<http://example.org/square> noa:hasGeometry ?g .
			<http://example.org/overlapping> noa:hasGeometry ?g2 .
		}`)
	b := res.Bindings[0]
	env, err := strdf.ParseSpatial(b["env"])
	if err != nil {
		t.Fatal(err)
	}
	if geo.Area(env.Geom) != 16 {
		t.Fatalf("envelope area = %g", geo.Area(env.Geom))
	}
	c, err := strdf.ParseSpatial(b["c"])
	if err != nil {
		t.Fatal(err)
	}
	if pt := c.Geom.(geo.Point); pt.X != 2 || pt.Y != 2 {
		t.Fatalf("centroid = %v", pt)
	}
	u, err := strdf.ParseSpatial(b["u"])
	if err != nil {
		t.Fatal(err)
	}
	if a := geo.Area(u.Geom); a < 27.9 || a > 28.1 {
		t.Fatalf("union area = %g", a)
	}
	i, err := strdf.ParseSpatial(b["i"])
	if err != nil {
		t.Fatal(err)
	}
	if a := geo.Area(i.Geom); a < 3.9 || a > 4.1 {
		t.Fatalf("intersection area = %g", a)
	}
}

func TestSpatialTransformAndIsEmpty(t *testing.T) {
	e := spatialFixture()
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT (strdf:transform(?g, 3857) AS ?merc)
		       (strdf:isEmpty(?g) AS ?empty)
		       (strdf:isEmpty(strdf:intersection(?g, ?far)) AS ?emptyInter)
		WHERE {
			<http://example.org/square> noa:hasGeometry ?g .
			<http://example.org/farpoint> noa:hasGeometry ?far .
		}`)
	b := res.Bindings[0]
	merc, err := strdf.ParseSpatial(b["merc"])
	if err != nil {
		t.Fatal(err)
	}
	if merc.SRID != geo.SRIDWebMercator {
		t.Fatalf("srid = %d", merc.SRID)
	}
	// 4 degrees of longitude in Mercator metres is ~445 km.
	if w := merc.Geom.Envelope().Width(); w < 4e5 || w > 5e5 {
		t.Fatalf("mercator width = %g", w)
	}
	if b["empty"].Value != "false" || b["emptyInter"].Value != "true" {
		t.Fatalf("isEmpty = %v / %v", b["empty"], b["emptyInter"])
	}
}

func TestSpatialFunctionErrors(t *testing.T) {
	e := spatialFixture()
	// Non-spatial argument: filter drops the row rather than aborting.
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?s WHERE {
			?s noa:hasGeometry ?g .
			FILTER(strdf:intersects(?s, ?g))
		}`)
	if len(res.Bindings) != 0 {
		t.Fatal("IRI as geometry should never match")
	}
	// Unknown strdf function errors at projection (BIND leaves unbound).
	res2 := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?v WHERE {
			<http://example.org/square> noa:hasGeometry ?g .
			BIND(strdf:nosuchfn(?g) AS ?v)
		}`)
	if len(res2.Bindings) != 1 {
		t.Fatalf("rows = %d", len(res2.Bindings))
	}
	if _, bound := res2.Bindings[0]["v"]; bound {
		t.Fatal("unknown function should leave BIND unbound")
	}
}

func TestBeforePeriodAndContains(t *testing.T) {
	st := strabon.NewStore()
	st.Add(rdf.NewTriple(rdf.IRI(exNS+"x"), rdf.IRI(noaNS+"validTime"),
		rdf.TypedLiteral("[2007-08-25T06:00:00Z, 2007-08-25T08:00:00Z)", strdf.PeriodDatatype)))
	e := New(st)
	yes := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		ASK WHERE {
			?x noa:validTime ?t .
			FILTER(strdf:beforePeriod(?t, "[2007-08-25T09:00:00Z, 2007-08-25T10:00:00Z)"^^strdf:period))
		}`)
	if !yes.Bool {
		t.Fatal("beforePeriod")
	}
	contains := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
		ASK WHERE {
			?x noa:validTime ?t .
			FILTER(strdf:periodContains(?t, "2007-08-25T07:00:00Z"^^xsd:dateTime))
		}`)
	if !contains.Bool {
		t.Fatal("periodContains")
	}
}

func TestStrBuiltinsOnSpatial(t *testing.T) {
	e := spatialFixture()
	res := e.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?s WHERE {
			?s noa:hasGeometry ?g .
			FILTER(CONTAINS(STR(?g), "LINESTRING"))
		}`)
	if len(res.Bindings) != 1 || !strings.Contains(res.Bindings[0]["s"].Value, "crossline") {
		t.Fatalf("bindings = %v", res.Bindings)
	}
}
