package stsparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
	"repro/internal/strdf"
)

// WellKnownPrefixes are pre-declared in every query, mirroring Strabon's
// endpoint defaults.
var WellKnownPrefixes = map[string]string{
	"rdf":   "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
	"rdfs":  "http://www.w3.org/2000/01/rdf-schema#",
	"xsd":   "http://www.w3.org/2001/XMLSchema#",
	"strdf": strdf.NS,
	"geo":   "http://www.opengis.net/ont/geosparql#",
}

// ParseQuery parses one stSPARQL statement.
func ParseQuery(src string) (*Query, error) {
	toks, err := lexQuery(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks, src: src, q: &Query{Limit: -1, Prefixes: map[string]string{}}}
	for k, v := range WellKnownPrefixes {
		p.q.Prefixes[k] = v
	}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if p.q.Explain {
		switch p.q.Form {
		case FormSelect, FormAsk, FormConstruct:
		default:
			return nil, fmt.Errorf("stsparql: EXPLAIN supports SELECT, ASK and CONSTRUCT, not updates")
		}
	}
	return p.q, nil
}

type qparser struct {
	toks []tok
	pos  int
	src  string
	q    *Query
	anon int
}

func (p *qparser) cur() tok { return p.toks[p.pos] }

func (p *qparser) errf(format string, args ...any) error {
	return fmt.Errorf("stsparql: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *qparser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *qparser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) expect(kind tokKind, text string) error {
	if p.accept(kind, text) {
		return nil
	}
	return p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *qparser) parse() error {
	// EXPLAIN prefixes the whole statement (before the prologue).
	if p.accept(tKeyword, "EXPLAIN") {
		p.q.Explain = true
	}
	for p.accept(tKeyword, "PREFIX") {
		if !p.at(tPrefixed, "") && !p.at(tSymbol, ":") {
			// A prefixed token like "ex:" carries the colon.
			return p.errf("expected prefix name")
		}
		name := strings.TrimSuffix(p.cur().text, ":")
		p.pos++
		if !p.at(tIRI, "") {
			return p.errf("expected namespace IRI after PREFIX %s:", name)
		}
		p.q.Prefixes[name] = p.cur().text
		p.pos++
	}
	switch {
	case p.accept(tKeyword, "SELECT"):
		return p.parseSelect()
	case p.accept(tKeyword, "ASK"):
		p.q.Form = FormAsk
		p.accept(tKeyword, "WHERE")
		g, err := p.groupPattern()
		if err != nil {
			return err
		}
		p.q.Where = g
		return p.expectEOF()
	case p.accept(tKeyword, "CONSTRUCT"):
		p.q.Form = FormConstruct
		tmpl, err := p.templateBlock()
		if err != nil {
			return err
		}
		p.q.ConstructTemplate = tmpl
		if err := p.expect(tKeyword, "WHERE"); err != nil {
			return err
		}
		g, err := p.groupPattern()
		if err != nil {
			return err
		}
		p.q.Where = g
		return p.expectEOF()
	case p.accept(tKeyword, "INSERT"):
		if p.accept(tKeyword, "DATA") {
			p.q.Form = FormInsertData
			return p.parseGroundData()
		}
		p.q.Form = FormModify
		tmpl, err := p.templateBlock()
		if err != nil {
			return err
		}
		p.q.InsertTemplate = tmpl
		return p.parseModifyTail(false)
	case p.accept(tKeyword, "DELETE"):
		if p.accept(tKeyword, "DATA") {
			p.q.Form = FormDeleteData
			return p.parseGroundData()
		}
		p.q.Form = FormModify
		// DELETE WHERE { pattern } shorthand.
		if p.at(tKeyword, "WHERE") {
			p.pos++
			g, err := p.groupPattern()
			if err != nil {
				return err
			}
			p.q.Where = g
			p.q.DeleteTemplate = g.Patterns
			return p.expectEOF()
		}
		tmpl, err := p.templateBlock()
		if err != nil {
			return err
		}
		p.q.DeleteTemplate = tmpl
		return p.parseModifyTail(true)
	}
	return p.errf("expected SELECT, ASK, CONSTRUCT, INSERT or DELETE")
}

func (p *qparser) parseModifyTail(hadDelete bool) error {
	if hadDelete && p.accept(tKeyword, "INSERT") {
		tmpl, err := p.templateBlock()
		if err != nil {
			return err
		}
		p.q.InsertTemplate = tmpl
	}
	if err := p.expect(tKeyword, "WHERE"); err != nil {
		return err
	}
	g, err := p.groupPattern()
	if err != nil {
		return err
	}
	p.q.Where = g
	return p.expectEOF()
}

func (p *qparser) expectEOF() error {
	if p.cur().kind != tEOF {
		return p.errf("trailing input %q", p.cur().text)
	}
	return nil
}

func (p *qparser) parseSelect() error {
	p.q.Form = FormSelect
	p.q.Distinct = p.accept(tKeyword, "DISTINCT")
	for {
		switch {
		case p.accept(tSymbol, "*"):
			p.q.SelectStar = true
		case p.at(tVar, ""):
			p.q.Projections = append(p.q.Projections, Projection{Var: p.cur().text})
			p.pos++
		case p.at(tSymbol, "("):
			p.pos++
			e, err := p.expression()
			if err != nil {
				return err
			}
			if err := p.expect(tKeyword, "AS"); err != nil {
				return err
			}
			if !p.at(tVar, "") {
				return p.errf("expected variable after AS")
			}
			v := p.cur().text
			p.pos++
			if err := p.expect(tSymbol, ")"); err != nil {
				return err
			}
			p.q.Projections = append(p.q.Projections, Projection{Var: v, Expr: e})
		default:
			if len(p.q.Projections) == 0 && !p.q.SelectStar {
				return p.errf("SELECT needs projections")
			}
			goto whereClause
		}
		if p.at(tKeyword, "WHERE") || p.at(tSymbol, "{") {
			break
		}
	}
whereClause:
	p.accept(tKeyword, "WHERE")
	g, err := p.groupPattern()
	if err != nil {
		return err
	}
	p.q.Where = g
	// Solution modifiers.
	if p.accept(tKeyword, "GROUP") {
		if err := p.expect(tKeyword, "BY"); err != nil {
			return err
		}
		for p.at(tVar, "") {
			p.q.GroupBy = append(p.q.GroupBy, p.cur().text)
			p.pos++
		}
		if len(p.q.GroupBy) == 0 {
			return p.errf("GROUP BY needs at least one variable")
		}
	}
	if p.accept(tKeyword, "ORDER") {
		if err := p.expect(tKeyword, "BY"); err != nil {
			return err
		}
		for {
			var key OrderKey
			switch {
			case p.accept(tKeyword, "DESC"):
				if err := p.expect(tSymbol, "("); err != nil {
					return err
				}
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expect(tSymbol, ")"); err != nil {
					return err
				}
				key = OrderKey{Expr: e, Desc: true}
			case p.accept(tKeyword, "ASC"):
				if err := p.expect(tSymbol, "("); err != nil {
					return err
				}
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expect(tSymbol, ")"); err != nil {
					return err
				}
				key = OrderKey{Expr: e}
			case p.at(tVar, ""):
				key = OrderKey{Expr: &EVar{Name: p.cur().text}}
				p.pos++
			default:
				return p.errf("expected ORDER BY key")
			}
			p.q.OrderBy = append(p.q.OrderBy, key)
			if !p.at(tVar, "") && !p.at(tKeyword, "DESC") && !p.at(tKeyword, "ASC") {
				break
			}
		}
	}
	if p.accept(tKeyword, "LIMIT") {
		n, err := p.intToken()
		if err != nil {
			return err
		}
		p.q.Limit = n
	}
	if p.accept(tKeyword, "OFFSET") {
		n, err := p.intToken()
		if err != nil {
			return err
		}
		p.q.Offset = n
	}
	return p.expectEOF()
}

func (p *qparser) intToken() (int, error) {
	if p.cur().kind != tNumber {
		return 0, p.errf("expected number")
	}
	n, err := strconv.Atoi(p.cur().text)
	if err != nil || n < 0 {
		return 0, p.errf("bad count %q", p.cur().text)
	}
	p.pos++
	return n, nil
}

// groupPattern parses { patterns FILTER(...) OPTIONAL {...} BIND(... AS ?v) }.
func (p *qparser) groupPattern() (*Group, error) {
	if err := p.expect(tSymbol, "{"); err != nil {
		return nil, err
	}
	g := &Group{}
	for {
		switch {
		case p.accept(tSymbol, "}"):
			return g, nil
		case p.accept(tKeyword, "FILTER"):
			withParens := p.accept(tSymbol, "(")
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if withParens {
				if err := p.expect(tSymbol, ")"); err != nil {
					return nil, err
				}
			}
			g.Filters = append(g.Filters, e)
			p.accept(tSymbol, ".")
		case p.accept(tKeyword, "OPTIONAL"):
			sub, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			g.Optionals = append(g.Optionals, sub)
			p.accept(tSymbol, ".")
		case p.at(tSymbol, "{"):
			// { A } UNION { B } [UNION { C } ...]
			first, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			alts := []*Group{first}
			for p.accept(tKeyword, "UNION") {
				alt, err := p.groupPattern()
				if err != nil {
					return nil, err
				}
				alts = append(alts, alt)
			}
			if len(alts) == 1 {
				// A bare nested group behaves like inlined patterns.
				g.Patterns = append(g.Patterns, first.Patterns...)
				g.Filters = append(g.Filters, first.Filters...)
				g.Optionals = append(g.Optionals, first.Optionals...)
				g.Binds = append(g.Binds, first.Binds...)
				g.Unions = append(g.Unions, first.Unions...)
			} else {
				g.Unions = append(g.Unions, alts)
			}
			p.accept(tSymbol, ".")
		case p.accept(tKeyword, "BIND"):
			if err := p.expect(tSymbol, "("); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tKeyword, "AS"); err != nil {
				return nil, err
			}
			if !p.at(tVar, "") {
				return nil, p.errf("expected variable in BIND")
			}
			v := p.cur().text
			p.pos++
			if err := p.expect(tSymbol, ")"); err != nil {
				return nil, err
			}
			g.Binds = append(g.Binds, BindClause{Expr: e, Var: v})
			p.accept(tSymbol, ".")
		default:
			pats, err := p.triplesSameSubject()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, pats...)
			if !p.accept(tSymbol, ".") {
				// A '}' must follow if no dot.
				if !p.at(tSymbol, "}") {
					return nil, p.errf("expected '.' or '}' after triple pattern")
				}
			}
		}
	}
}

// templateBlock parses { template triples } used by CONSTRUCT/INSERT/DELETE.
func (p *qparser) templateBlock() ([]Pattern, error) {
	if err := p.expect(tSymbol, "{"); err != nil {
		return nil, err
	}
	var out []Pattern
	for {
		if p.accept(tSymbol, "}") {
			return out, nil
		}
		pats, err := p.triplesSameSubject()
		if err != nil {
			return nil, err
		}
		out = append(out, pats...)
		if !p.accept(tSymbol, ".") && !p.at(tSymbol, "}") {
			return nil, p.errf("expected '.' or '}' in template")
		}
	}
}

func (p *qparser) parseGroundData() error {
	pats, err := p.templateBlock()
	if err != nil {
		return err
	}
	for _, pat := range pats {
		if pat.S.IsVar() || pat.P.IsVar() || pat.O.IsVar() {
			return p.errf("INSERT/DELETE DATA cannot contain variables")
		}
		p.q.Data = append(p.q.Data, rdf.Triple{S: pat.S.Term, P: pat.P.Term, O: pat.O.Term})
	}
	return p.expectEOF()
}

// triplesSameSubject parses s p o [; p o]* [, o]*.
func (p *qparser) triplesSameSubject() ([]Pattern, error) {
	s, err := p.patTerm(true)
	if err != nil {
		return nil, err
	}
	var out []Pattern
	for {
		pred, err := p.patTerm(false)
		if err != nil {
			return nil, err
		}
		for {
			obj, err := p.patTerm(true)
			if err != nil {
				return nil, err
			}
			out = append(out, Pattern{S: s, P: pred, O: obj})
			if p.accept(tSymbol, ",") {
				continue
			}
			break
		}
		if p.accept(tSymbol, ";") {
			// Allow trailing ';' before '.' or '}'.
			if p.at(tSymbol, ".") || p.at(tSymbol, "}") {
				break
			}
			continue
		}
		break
	}
	return out, nil
}

// patTerm parses one pattern position. allowLiteral permits literals
// (subjects/predicates reject them semantically later; predicates use 'a').
func (p *qparser) patTerm(allowLiteral bool) (PatTerm, error) {
	t := p.cur()
	switch t.kind {
	case tVar:
		p.pos++
		return PatTerm{Var: t.text}, nil
	case tIRI:
		p.pos++
		return PatTerm{Term: rdf.IRI(t.text)}, nil
	case tA:
		p.pos++
		return PatTerm{Term: rdf.IRI(rdf.RDFType)}, nil
	case tPrefixed:
		p.pos++
		iri, err := p.expandPrefixed(t.text)
		if err != nil {
			return PatTerm{}, err
		}
		return PatTerm{Term: rdf.IRI(iri)}, nil
	case tBlank:
		p.pos++
		return PatTerm{Term: rdf.Blank(t.text)}, nil
	case tString:
		if !allowLiteral {
			return PatTerm{}, p.errf("literal not allowed here")
		}
		p.pos++
		term, err := p.stringTerm(t)
		if err != nil {
			return PatTerm{}, err
		}
		return PatTerm{Term: term}, nil
	case tNumber:
		if !allowLiteral {
			return PatTerm{}, p.errf("literal not allowed here")
		}
		p.pos++
		return PatTerm{Term: numberTerm(t.text)}, nil
	case tKeyword:
		if t.text == "TRUE" || t.text == "FALSE" {
			p.pos++
			return PatTerm{Term: rdf.BooleanLiteral(t.text == "TRUE")}, nil
		}
	}
	return PatTerm{}, p.errf("expected term, found %q", t.text)
}

func (p *qparser) stringTerm(t tok) (rdf.Term, error) {
	switch {
	case t.lang != "":
		return rdf.LangLiteral(t.text, t.lang), nil
	case t.dtIRI != "":
		return rdf.TypedLiteral(t.text, t.dtIRI), nil
	case t.dtPrefixed != "":
		iri, err := p.expandPrefixed(t.dtPrefixed)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.TypedLiteral(t.text, iri), nil
	default:
		return rdf.Literal(t.text), nil
	}
}

func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, ".eE") {
		if strings.ContainsAny(text, "eE") {
			return rdf.TypedLiteral(text, rdf.XSDDouble)
		}
		return rdf.TypedLiteral(text, rdf.XSDDecimal)
	}
	return rdf.TypedLiteral(text, rdf.XSDInteger)
}

func (p *qparser) expandPrefixed(name string) (string, error) {
	i := strings.IndexByte(name, ':')
	if i < 0 {
		return "", p.errf("malformed prefixed name %q", name)
	}
	ns, ok := p.q.Prefixes[name[:i]]
	if !ok {
		return "", p.errf("unknown prefix %q", name[:i])
	}
	return ns + name[i+1:], nil
}

// Expression grammar: || -> && -> comparison -> additive -> multiplicative
// -> unary -> primary.

func (p *qparser) expression() (Expression, error) { return p.orExpr() }

func (p *qparser) orExpr() (Expression, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tSymbol, "||") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Op: "||", Left: l, Right: r}
	}
	return l, nil
}

func (p *qparser) andExpr() (Expression, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tSymbol, "&&") {
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Op: "&&", Left: l, Right: r}
	}
	return l, nil
}

func (p *qparser) cmpExpr() (Expression, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.accept(tSymbol, op) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &EBinary{Op: op, Left: l, Right: r}, nil
		}
	}
	return l, nil
}

func (p *qparser) addExpr() (Expression, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tSymbol, "+"):
			op = "+"
		case p.accept(tSymbol, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Op: op, Left: l, Right: r}
	}
}

func (p *qparser) mulExpr() (Expression, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tSymbol, "*"):
			op = "*"
		case p.accept(tSymbol, "/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Op: op, Left: l, Right: r}
	}
}

func (p *qparser) unaryExpr() (Expression, error) {
	if p.accept(tSymbol, "!") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &EUnary{Op: "!", X: x}, nil
	}
	if p.accept(tSymbol, "-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &EUnary{Op: "-", X: x}, nil
	}
	return p.primaryExpr()
}

func (p *qparser) primaryExpr() (Expression, error) {
	t := p.cur()
	switch t.kind {
	case tVar:
		p.pos++
		return &EVar{Name: t.text}, nil
	case tNumber:
		p.pos++
		return &ELit{Term: numberTerm(t.text)}, nil
	case tString:
		p.pos++
		term, err := p.stringTerm(t)
		if err != nil {
			return nil, err
		}
		return &ELit{Term: term}, nil
	case tIRI:
		p.pos++
		return &ELit{Term: rdf.IRI(t.text)}, nil
	case tSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tKeyword:
		// Builtin function call (BOUND, REGEX, STR, ...) or TRUE/FALSE.
		switch t.text {
		case "TRUE":
			p.pos++
			return &ELit{Term: rdf.BooleanLiteral(true)}, nil
		case "FALSE":
			p.pos++
			return &ELit{Term: rdf.BooleanLiteral(false)}, nil
		}
		p.pos++
		return p.callTail("", strings.ToLower(t.text))
	case tPrefixed:
		// strdf:intersects(...) etc.
		p.pos++
		i := strings.IndexByte(t.text, ':')
		ns := t.text[:i]
		local := t.text[i+1:]
		if p.at(tSymbol, "(") {
			return p.callTail(ns, strings.ToLower(local))
		}
		iri, err := p.expandPrefixed(t.text)
		if err != nil {
			return nil, err
		}
		return &ELit{Term: rdf.IRI(iri)}, nil
	}
	return nil, p.errf("expected expression, found %q", t.text)
}

func (p *qparser) callTail(ns, name string) (Expression, error) {
	if err := p.expect(tSymbol, "("); err != nil {
		return nil, err
	}
	call := &ECall{NS: ns, Name: name}
	if p.accept(tSymbol, "*") {
		call.Star = true
		if err := p.expect(tSymbol, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.accept(tSymbol, ")") {
		return call, nil
	}
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if p.accept(tSymbol, ",") {
			continue
		}
		break
	}
	if err := p.expect(tSymbol, ")"); err != nil {
		return nil, err
	}
	return call, nil
}
