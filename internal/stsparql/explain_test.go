package stsparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/strabon"
)

func explainFixture() *strabon.Store {
	st := strabon.NewStore()
	// 2000 sites, one needle: the statistics must put the needle pattern
	// first even though it is written last.
	for i := 0; i < 2000; i++ {
		s := rdf.IRI("http://ex/site" + itoa(i))
		st.Add(rdf.NewTriple(s, rdf.IRI(rdf.RDFType), rdf.IRI("http://ex/Site")))
		st.Add(rdf.NewTriple(s, rdf.IRI("http://ex/name"), rdf.Literal("site-"+itoa(i))))
	}
	st.Add(rdf.NewTriple(rdf.IRI("http://ex/site7"),
		rdf.IRI("http://ex/isNeedle"), rdf.BooleanLiteral(true)))
	return st
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func explainText(t *testing.T, eng *Engine, query string) string {
	t.Helper()
	res, err := eng.Query(query)
	if err != nil {
		t.Fatalf("EXPLAIN failed: %v", err)
	}
	if len(res.Vars) != 1 || res.Vars[0] != "plan" {
		t.Fatalf("EXPLAIN vars = %v, want [plan]", res.Vars)
	}
	var lines []string
	for _, b := range res.Bindings {
		lines = append(lines, b["plan"].Value)
	}
	return strings.Join(lines, "\n")
}

// TestExplainSelect checks the whole contract: estimated AND measured
// cardinalities appear, the statistics-backed order puts the selective
// needle pattern before the wide type scan, and the header reports the
// worker bound.
func TestExplainSelect(t *testing.T) {
	eng := New(explainFixture())
	eng.MaxParallelism = 3
	plan := explainText(t, eng, `EXPLAIN SELECT ?s WHERE {
		?s a <http://ex/Site> .
		?s <http://ex/isNeedle> ?flag .
	}`)
	if !strings.Contains(plan, "workers=3") {
		t.Errorf("plan missing workers bound:\n%s", plan)
	}
	if !strings.Contains(plan, "est=") || !strings.Contains(plan, "rows=") {
		t.Errorf("plan missing est/rows columns:\n%s", plan)
	}
	if !strings.Contains(plan, "order=statistics") {
		t.Errorf("plan missing planner mode:\n%s", plan)
	}
	// The needle scan (1 row) must be planned before the Site scan.
	needleAt := strings.Index(plan, "isNeedle")
	siteAt := strings.Index(plan, "http://ex/Site")
	if needleAt < 0 || siteAt < 0 || needleAt > siteAt {
		t.Errorf("needle pattern not ordered first:\n%s", plan)
	}
	// Measured cardinality of the join chain ends at 1 row.
	if !strings.Contains(plan, "rows=1") {
		t.Errorf("plan missing the measured 1-row result:\n%s", plan)
	}
}

// TestExplainEstimatesVsActuals: on an equality-selective probe the
// statistics make est match the measured rows exactly (count/distinctS
// of a functional property is 1 per subject).
func TestExplainEstimatesVsActuals(t *testing.T) {
	eng := New(explainFixture())
	plan := explainText(t, eng, `EXPLAIN SELECT ?s ?n WHERE {
		?s <http://ex/isNeedle> ?f .
		?s <http://ex/name> ?n .
	}`)
	// scan of isNeedle: est=1 rows=1; join on name: 2000/2000 distinct
	// subjects -> est=1 rows=1.
	for _, want := range []string{"est=1", "rows=1"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

// TestExplainForms covers ASK and CONSTRUCT explains plus the syntactic
// (optimizer-off) mode, and EXPLAIN on unions/optionals/filters.
func TestExplainForms(t *testing.T) {
	eng := New(explainFixture())
	ask := explainText(t, eng, `EXPLAIN ASK { ?s <http://ex/isNeedle> ?f }`)
	if !strings.Contains(ask, "ASK") {
		t.Errorf("ASK explain header wrong:\n%s", ask)
	}
	cons := explainText(t, eng, `EXPLAIN CONSTRUCT { ?s a <http://ex/Found> } WHERE { ?s <http://ex/isNeedle> ?f }`)
	if !strings.Contains(cons, "CONSTRUCT") {
		t.Errorf("CONSTRUCT explain header wrong:\n%s", cons)
	}
	rich := explainText(t, eng, `EXPLAIN SELECT ?s WHERE {
		{ ?s <http://ex/isNeedle> ?f } UNION { ?s <http://ex/name> "site-3" }
		OPTIONAL { ?s <http://ex/name> ?n }
		FILTER(BOUND(?s))
	}`)
	for _, want := range []string{"union", "optional", "filter", "alt 1", "alt 2"} {
		if !strings.Contains(rich, want) {
			t.Errorf("rich explain missing %q:\n%s", want, rich)
		}
	}
	eng.DisableOptimizer = true
	syn := explainText(t, eng, `EXPLAIN SELECT ?s WHERE { ?s a <http://ex/Site> . ?s <http://ex/isNeedle> ?f }`)
	if !strings.Contains(syn, "order=syntactic") {
		t.Errorf("optimizer-off explain missing order=syntactic:\n%s", syn)
	}
	// Syntactic order keeps the wide scan first.
	if siteAt, needleAt := strings.Index(syn, "http://ex/Site"), strings.Index(syn, "isNeedle"); siteAt > needleAt {
		t.Errorf("syntactic order not preserved:\n%s", syn)
	}
}

// TestExplainUpdateRejected: EXPLAIN on updates is a parse error.
func TestExplainUpdateRejected(t *testing.T) {
	if _, err := ParseQuery(`EXPLAIN INSERT DATA { <http://ex/a> <http://ex/b> <http://ex/c> }`); err == nil {
		t.Fatal("EXPLAIN INSERT DATA parsed without error")
	}
	if _, err := ParseQuery(`EXPLAIN DELETE { ?s ?p ?o } INSERT { ?s ?p ?o } WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("EXPLAIN DELETE/INSERT parsed without error")
	}
}

// TestStatsOrderingBeatsBlindDiscount reproduces the planner scenario
// the fixed /8 discount got wrong: a bound-subject probe on a property
// held by EVERY subject (name) versus a narrow class scan. The
// statistics know name has 2000 distinct subjects (1 match per probe);
// the old heuristic scored it 2001/8 ≈ 250 and could mis-order.
func TestStatsOrderingBeatsBlindDiscount(t *testing.T) {
	st := explainFixture()
	pl := &planner{e: New(st), snap: st.Snapshot()}
	bound := map[string]bool{"s": true}
	perRow := pl.estimatePattern(Pattern{
		S: PatTerm{Var: "s"},
		P: PatTerm{Term: rdf.IRI("http://ex/name")},
		O: PatTerm{Var: "n"},
	}, bound, nil)
	if perRow > 1.5 {
		t.Fatalf("bound-subject probe on a functional property estimated %v matches/row, want ~1", perRow)
	}
	unboundScan := pl.estimatePattern(Pattern{
		S: PatTerm{Var: "x"},
		P: PatTerm{Term: rdf.IRI("http://ex/name")},
		O: PatTerm{Var: "y"},
	}, bound, nil)
	if unboundScan < 1999 {
		t.Fatalf("unbound scan estimated %v, want ~2000", unboundScan)
	}
}
