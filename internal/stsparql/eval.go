package stsparql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/geo"
	"repro/internal/parallel"
	"repro/internal/rdf"
	"repro/internal/strabon"
	"repro/internal/strdf"
)

// Binding maps variable names to RDF terms.
type Binding map[string]rdf.Term

// Result is the outcome of a statement.
type Result struct {
	// Vars and Bindings hold SELECT results.
	Vars     []string
	Bindings []Binding
	// Bool holds ASK results.
	Bool bool
	// Triples holds CONSTRUCT results.
	Triples []rdf.Triple
	// Affected counts update mutations.
	Affected int
}

// Engine evaluates stSPARQL against a Strabon store.
type Engine struct {
	store *strabon.Store
	// DisableOptimizer keeps basic graph patterns in syntactic order
	// (ablation A1 companion; the default orders by selectivity).
	DisableOptimizer bool
	// DisableSpatialPushdown stops spatial filters from pruning via the
	// store's R-tree (ablation A1).
	DisableSpatialPushdown bool
	// DisableVectorized falls back to the legacy binding-at-a-time
	// evaluator (one decoded map per solution, one index probe per
	// binding×pattern pair). The default vectorized executor evaluates in
	// dictionary-id space over a store snapshot; the flag exists for
	// ablations and old-vs-new equivalence testing.
	DisableVectorized bool
	// MaxParallelism bounds the morsel parallelism of one query through
	// the vectorized executor: how many workers may concurrently pull
	// row batches from the shared slot-budget pool (internal/parallel).
	// 0 means the pool's default (GOMAXPROCS); 1 forces serial
	// execution. teleios-server wires -max-query-parallelism here.
	MaxParallelism int

	geomMu    sync.Mutex
	geomCache map[string]strdf.SpatialValue

	// planMu guards planCache, a parsed-statement cache keyed on query
	// text (the prepared-statement idiom: the endpoint's dashboards replay
	// identical query strings against a changing store, and the result
	// cache cannot help once the store version moves). Parsed queries are
	// read-only during evaluation, so cached ASTs are shared freely.
	planMu    sync.Mutex
	planCache map[string]*Query
}

// planCacheCap bounds the parsed-statement cache; when full it is simply
// reset (query workloads cycle through a small set of templates).
const planCacheCap = 512

// New returns an engine over the given store.
func New(store *strabon.Store) *Engine {
	return &Engine{store: store, geomCache: map[string]strdf.SpatialValue{}}
}

// Store exposes the underlying store.
func (e *Engine) Store() *strabon.Store { return e.store }

// queryWorkers resolves the engine's per-query morsel-parallelism bound.
func (e *Engine) queryWorkers() int {
	if e.MaxParallelism > 0 {
		return e.MaxParallelism
	}
	return parallel.Parallelism()
}

// Query parses and evaluates one statement; parse results are cached per
// query text.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query under a cancellation context: evaluation stops
// (returning the context's error) when ctx is cancelled or times out.
func (e *Engine) QueryContext(ctx context.Context, src string) (*Result, error) {
	e.planMu.Lock()
	q, ok := e.planCache[src]
	e.planMu.Unlock()
	if !ok {
		var err error
		q, err = ParseQuery(src)
		if err != nil {
			return nil, err
		}
		e.planMu.Lock()
		if e.planCache == nil || len(e.planCache) >= planCacheCap {
			e.planCache = make(map[string]*Query)
		}
		e.planCache[src] = q
		e.planMu.Unlock()
	}
	return e.EvalContext(ctx, q)
}

// MustQuery is Query that panics on error; for tests and fixtures.
func (e *Engine) MustQuery(src string) *Result {
	r, err := e.Query(src)
	if err != nil {
		panic(err)
	}
	return r
}

// Eval evaluates a parsed statement.
func (e *Engine) Eval(q *Query) (*Result, error) {
	return e.EvalContext(context.Background(), q)
}

// EvalContext evaluates a parsed statement under a cancellation context.
// Both executors check ctx at operator and batch boundaries, so an
// expired endpoint deadline stops the evaluation instead of orphaning
// it. EXPLAIN statements return the executed physical plan instead of
// the statement's rows.
func (e *Engine) EvalContext(ctx context.Context, q *Query) (*Result, error) {
	if q.Explain {
		return e.evalExplain(ctx, q)
	}
	switch q.Form {
	case FormSelect:
		if !e.DisableVectorized {
			return e.evalSelectVec(ctx, q)
		}
		return e.evalSelect(ctx, q)
	case FormAsk:
		if !e.DisableVectorized {
			v := newVexec(ctx, e)
			tb, err := v.evalRoot(q.Where)
			if err != nil {
				return nil, err
			}
			return &Result{Bool: tb.n() > 0}, nil
		}
		bindings, err := e.evalGroup(ctx, q.Where, []Binding{{}})
		if err != nil {
			return nil, err
		}
		return &Result{Bool: len(bindings) > 0}, nil
	case FormConstruct:
		if !e.DisableVectorized {
			return e.evalConstructWith(newVexec(ctx, e), q)
		}
		bindings, err := e.evalGroup(ctx, q.Where, []Binding{{}})
		if err != nil {
			return nil, err
		}
		return &Result{Triples: constructTriples(q, bindings)}, nil
	case FormInsertData:
		return &Result{Affected: e.store.AddAll(q.Data)}, nil
	case FormDeleteData:
		n := 0
		for _, t := range q.Data {
			if e.store.Remove(t) {
				n++
			}
		}
		return &Result{Affected: n}, nil
	case FormModify:
		return e.evalModify(ctx, q)
	}
	return nil, fmt.Errorf("stsparql: unsupported query form %d", q.Form)
}

// evalConstructWith runs CONSTRUCT through a caller-supplied vectorized
// executor (EXPLAIN reuses it to harvest the measured plan).
func (e *Engine) evalConstructWith(v *vexec, q *Query) (*Result, error) {
	tb, err := v.evalRoot(q.Where)
	if err != nil {
		return nil, err
	}
	return &Result{Triples: constructTriples(q, v.decodeTable(tb))}, nil
}

// constructTriples instantiates the CONSTRUCT template over solved
// bindings, deduplicating in first-seen order.
func constructTriples(q *Query, bindings []Binding) []rdf.Triple {
	var out []rdf.Triple
	seen := map[rdf.Triple]bool{}
	for _, b := range bindings {
		for _, pat := range q.ConstructTemplate {
			t, ok := instantiate(pat, b)
			if ok && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// solve evaluates a graph pattern to decoded bindings through whichever
// executor is active; non-SELECT forms (CONSTRUCT, DELETE/INSERT WHERE)
// need materialised terms anyway, so they share this boundary.
func (e *Engine) solve(ctx context.Context, g *Group) ([]Binding, error) {
	if e.DisableVectorized {
		return e.evalGroup(ctx, g, []Binding{{}})
	}
	v := newVexec(ctx, e)
	tb, err := v.evalRoot(g)
	if err != nil {
		return nil, err
	}
	return v.decodeTable(tb), nil
}

func (e *Engine) evalModify(ctx context.Context, q *Query) (*Result, error) {
	bindings, err := e.solve(ctx, q.Where)
	if err != nil {
		return nil, err
	}
	affected := 0
	// Materialise all deletions and insertions before applying, so the
	// WHERE evaluation is not perturbed mid-update.
	var dels, ins []rdf.Triple
	for _, b := range bindings {
		for _, pat := range q.DeleteTemplate {
			if t, ok := instantiate(pat, b); ok {
				dels = append(dels, t)
			}
		}
		for _, pat := range q.InsertTemplate {
			if t, ok := instantiate(pat, b); ok {
				ins = append(ins, t)
			}
		}
	}
	for _, t := range dels {
		if e.store.Remove(t) {
			affected++
		}
	}
	for _, t := range ins {
		if e.store.Add(t) {
			affected++
		}
	}
	return &Result{Affected: affected}, nil
}

func instantiate(pat Pattern, b Binding) (rdf.Triple, bool) {
	resolve := func(pt PatTerm) (rdf.Term, bool) {
		if !pt.IsVar() {
			return pt.Term, true
		}
		t, ok := b[pt.Var]
		return t, ok
	}
	s, ok := resolve(pat.S)
	if !ok {
		return rdf.Triple{}, false
	}
	p, ok := resolve(pat.P)
	if !ok {
		return rdf.Triple{}, false
	}
	o, ok := resolve(pat.O)
	if !ok {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}

func (e *Engine) evalSelect(ctx context.Context, q *Query) (*Result, error) {
	bindings, err := e.evalGroup(ctx, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	// Aggregate projections group and collapse.
	if len(q.GroupBy) > 0 || hasAggregate(q.Projections) {
		return e.evalAggregateSelect(q, bindings)
	}
	// Determine output variables.
	vars := projectionVars(q, bindings)
	// Evaluate expression projections.
	out := make([]Binding, 0, len(bindings))
	for _, b := range bindings {
		nb := Binding{}
		for _, v := range vars {
			if t, ok := b[v]; ok {
				nb[v] = t
			}
		}
		for _, pr := range q.Projections {
			if pr.Expr == nil {
				continue
			}
			t, err := e.evalExpr(pr.Expr, b)
			if err == nil && !t.IsZero() {
				nb[pr.Var] = t
			}
		}
		out = append(out, nb)
	}
	if q.Distinct {
		out = distinctBindings(vars, out)
	}
	if len(q.OrderBy) > 0 {
		if err := e.orderBindings(out, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = nil
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit >= 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return &Result{Vars: vars, Bindings: out}, nil
}

func isAggregateName(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

func hasAggregate(prs []Projection) bool {
	for _, pr := range prs {
		if c, ok := pr.Expr.(*ECall); ok && isAggregateName(c.Name) {
			return true
		}
	}
	return false
}

// evalAggregateSelect implements GROUP BY plus the SPARQL 1.1 aggregates
// COUNT, SUM, AVG, MIN, MAX. Without GROUP BY the whole solution sequence
// is one group.
func (e *Engine) evalAggregateSelect(q *Query, bindings []Binding) (*Result, error) {
	type grp struct {
		rep  Binding
		rows []Binding
	}
	var groups []*grp
	if len(q.GroupBy) == 0 {
		groups = []*grp{{rep: Binding{}, rows: bindings}}
	} else {
		byKey := map[string]*grp{}
		for _, b := range bindings {
			var key strings.Builder
			for _, v := range q.GroupBy {
				key.WriteString(b[v].String())
				key.WriteByte('|')
			}
			g, ok := byKey[key.String()]
			if !ok {
				rep := Binding{}
				for _, v := range q.GroupBy {
					if t, bound := b[v]; bound {
						rep[v] = t
					}
				}
				g = &grp{rep: rep}
				byKey[key.String()] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, b)
		}
	}
	var vars []string
	for _, pr := range q.Projections {
		vars = append(vars, pr.Var)
	}
	out := make([]Binding, 0, len(groups))
	for _, g := range groups {
		row := Binding{}
		for _, pr := range q.Projections {
			if pr.Expr == nil {
				// A plain variable must be a grouping variable.
				if t, ok := g.rep[pr.Var]; ok {
					row[pr.Var] = t
					continue
				}
				return nil, fmt.Errorf("stsparql: projected variable ?%s is not in GROUP BY", pr.Var)
			}
			c, ok := pr.Expr.(*ECall)
			if !ok || !isAggregateName(c.Name) {
				return nil, fmt.Errorf("stsparql: aggregate queries allow only aggregate expression projections")
			}
			t, err := e.evalAggregateCall(c, g.rows)
			if err != nil {
				return nil, err
			}
			if !t.IsZero() {
				row[pr.Var] = t
			}
		}
		out = append(out, row)
	}
	if len(q.OrderBy) > 0 {
		if err := e.orderBindings(out, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = nil
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit >= 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return &Result{Vars: vars, Bindings: out}, nil
}

// evalAggregateCall computes one aggregate over a group's rows.
func (e *Engine) evalAggregateCall(c *ECall, rows []Binding) (rdf.Term, error) {
	if c.Name == "count" && c.Star {
		return rdf.IntegerLiteral(int64(len(rows))), nil
	}
	if len(c.Args) != 1 {
		return rdf.Term{}, fmt.Errorf("stsparql: %s takes one argument", strings.ToUpper(c.Name))
	}
	if c.Name == "count" {
		n := 0
		for _, b := range rows {
			if v, err := e.evalExpr(c.Args[0], b); err == nil && !v.IsZero() {
				n++
			}
		}
		return rdf.IntegerLiteral(int64(n)), nil
	}
	var sum float64
	var count int
	var minT, maxT rdf.Term
	for _, b := range rows {
		v, err := e.evalExpr(c.Args[0], b)
		if err != nil {
			continue // unbound / erroring rows are skipped per SPARQL
		}
		switch c.Name {
		case "sum", "avg":
			f, ok := numericValue(v)
			if !ok {
				return rdf.Term{}, fmt.Errorf("stsparql: %s over non-numeric value %s", strings.ToUpper(c.Name), v)
			}
			sum += f
			count++
		case "min":
			if minT.IsZero() || compareTerms(v, minT) < 0 {
				minT = v
			}
			count++
		case "max":
			if maxT.IsZero() || compareTerms(v, maxT) > 0 {
				maxT = v
			}
			count++
		}
	}
	if count == 0 {
		return rdf.Term{}, nil // aggregate over the empty group is unbound
	}
	switch c.Name {
	case "sum":
		return rdf.DoubleLiteral(sum), nil
	case "avg":
		return rdf.DoubleLiteral(sum / float64(count)), nil
	case "min":
		return minT, nil
	case "max":
		return maxT, nil
	}
	return rdf.Term{}, fmt.Errorf("stsparql: unknown aggregate %q", c.Name)
}

func projectionVars(q *Query, bindings []Binding) []string {
	if !q.SelectStar {
		vars := make([]string, 0, len(q.Projections))
		for _, pr := range q.Projections {
			vars = append(vars, pr.Var)
		}
		return vars
	}
	seen := map[string]bool{}
	var vars []string
	for _, b := range bindings {
		for v := range b {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	sort.Strings(vars)
	return vars
}

func distinctBindings(vars []string, in []Binding) []Binding {
	seen := map[string]bool{}
	var out []Binding
	for _, b := range in {
		var key strings.Builder
		for _, v := range vars {
			key.WriteString(b[v].String())
			key.WriteByte('|')
		}
		if !seen[key.String()] {
			seen[key.String()] = true
			out = append(out, b)
		}
	}
	return out
}

func (e *Engine) orderBindings(bs []Binding, keys []OrderKey) error {
	var evalErr error
	sort.SliceStable(bs, func(i, j int) bool {
		for _, k := range keys {
			vi, errI := e.evalExpr(k.Expr, bs[i])
			vj, errJ := e.evalExpr(k.Expr, bs[j])
			if errI != nil || errJ != nil {
				continue
			}
			c := compareTerms(vi, vj)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return evalErr
}

// evalGroup evaluates a graph pattern group, extending the seed bindings.
// The context is checked at group entry and inside the per-binding
// pattern loops, so cancelled queries stop promptly even on the legacy
// path.
func (e *Engine) evalGroup(ctx context.Context, g *Group, seed []Binding) ([]Binding, error) {
	if g == nil {
		return seed, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hints := e.spatialHints(g.Filters)
	patterns := g.Patterns
	if !e.DisableOptimizer {
		// The legacy evaluator shares the statistics-backed planner with
		// the vectorized executor: ordering consults the (cached)
		// snapshot's statistics, never the fixed per-bound-var discount
		// it used historically.
		bound := map[string]bool{}
		if len(seed) > 0 {
			for v := range seed[0] {
				bound[v] = true
			}
		}
		pl := &planner{e: e, snap: e.store.Snapshot()}
		patterns = pl.orderPatterns(patterns, bound, hints)
	}
	bindings := seed
	for _, pat := range patterns {
		var err error
		bindings, err = e.evalPattern(ctx, pat, bindings, hints)
		if err != nil {
			return nil, err
		}
		if len(bindings) == 0 {
			break
		}
	}
	// BIND clauses.
	for _, bc := range g.Binds {
		for i, b := range bindings {
			t, err := e.evalExpr(bc.Expr, b)
			if err != nil {
				continue // unevaluable BIND leaves the var unbound
			}
			nb := cloneBinding(b)
			nb[bc.Var] = t
			bindings[i] = nb
		}
	}
	// FILTERs.
	for _, f := range g.Filters {
		var kept []Binding
		for _, b := range bindings {
			ok, err := e.evalFilter(f, b)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, b)
			}
		}
		bindings = kept
	}
	// UNION blocks: each surviving binding extends through every
	// alternative; the block's solutions are the concatenation.
	for _, alts := range g.Unions {
		var next []Binding
		for _, b := range bindings {
			for _, alt := range alts {
				sub, err := e.evalGroup(ctx, alt, []Binding{b})
				if err != nil {
					return nil, err
				}
				next = append(next, sub...)
			}
		}
		bindings = next
	}
	// OPTIONAL groups (left join).
	for _, opt := range g.Optionals {
		var next []Binding
		for _, b := range bindings {
			sub, err := e.evalGroup(ctx, opt, []Binding{b})
			if err != nil {
				return nil, err
			}
			if len(sub) == 0 {
				next = append(next, b)
			} else {
				next = append(next, sub...)
			}
		}
		bindings = next
	}
	return bindings, nil
}

func cloneBinding(b Binding) Binding {
	nb := make(Binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// spatialHints extracts per-variable bounding boxes from filters of the
// shape strdf:rel(?v, CONST) (or reversed) and distance comparisons,
// enabling R-tree pruning during pattern evaluation.
func (e *Engine) spatialHints(filters []Expression) map[string]geo.Envelope {
	if e.DisableSpatialPushdown {
		return nil
	}
	hints := map[string]geo.Envelope{}
	var walk func(ex Expression)
	walk = func(ex Expression) {
		switch t := ex.(type) {
		case *EBinary:
			if t.Op == "&&" {
				walk(t.Left)
				walk(t.Right)
				return
			}
			// strdf:distance(?v, CONST) < N  (any comparison ordering).
			if t.Op == "<" || t.Op == "<=" {
				if call, ok := t.Left.(*ECall); ok && call.NS == "strdf" && call.Name == "distance" {
					if lit, ok := t.Right.(*ELit); ok {
						if v, g, ok := varConstGeom(call.Args, e); ok {
							if meters, ok2 := numericValue(lit.Term); ok2 {
								// Conservative degree expansion: 1 degree is
								// at least ~78 km of longitude below 45 lat.
								deg := meters / 78000
								addHint(hints, v, g.Geom.Envelope().Expand(deg))
							}
						}
					}
				}
			}
		case *ECall:
			if t.NS != "strdf" {
				return
			}
			switch t.Name {
			case "intersects", "within", "equals", "touches", "overlaps", "crosses", "contains":
				if v, g, ok := varConstGeom(t.Args, e); ok {
					addHint(hints, v, g.Geom.Envelope())
				}
			}
		}
	}
	for _, f := range filters {
		walk(f)
	}
	return hints
}

func addHint(hints map[string]geo.Envelope, v string, env geo.Envelope) {
	if cur, ok := hints[v]; ok {
		// Multiple constraints: intersect the boxes.
		hints[v] = cur.Intersection(env)
		return
	}
	hints[v] = env
}

// varConstGeom matches argument lists (?v, CONSTGEOM) or (CONSTGEOM, ?v).
func varConstGeom(args []Expression, e *Engine) (string, strdf.SpatialValue, bool) {
	if len(args) != 2 {
		return "", strdf.SpatialValue{}, false
	}
	if v, ok := args[0].(*EVar); ok {
		if lit, ok := args[1].(*ELit); ok && lit.Term.IsSpatial() {
			if g, err := e.parseGeom(lit.Term); err == nil {
				return v.Name, g, true
			}
		}
	}
	if v, ok := args[1].(*EVar); ok {
		if lit, ok := args[0].(*ELit); ok && lit.Term.IsSpatial() {
			if g, err := e.parseGeom(lit.Term); err == nil {
				return v.Name, g, true
			}
		}
	}
	return "", strdf.SpatialValue{}, false
}

// evalPattern extends each binding with the matches of one pattern.
func (e *Engine) evalPattern(ctx context.Context, pat Pattern, bindings []Binding, hints map[string]geo.Envelope) ([]Binding, error) {
	// Spatial candidate set for an unbound object variable with a hint.
	var spatialSet map[uint64]bool
	if env, ok := hints[objVar(pat)]; ok {
		ids := e.store.SpatialCandidates(env)
		spatialSet = make(map[uint64]bool, len(ids))
		for _, id := range ids {
			spatialSet[id] = true
		}
	}
	var out []Binding
	for bi, b := range bindings {
		if bi&255 == 255 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tp, ok := e.boundPattern(pat, b)
		if !ok {
			continue // a constant term unknown to the store: no matches
		}
		rows := e.store.MatchIDs(tp)
		for _, row := range rows {
			s, p, o := e.store.Row(row)
			if spatialSet != nil && pat.O.IsVar() {
				if _, bound := b[pat.O.Var]; !bound && !spatialSet[o] {
					continue
				}
			}
			nb, ok := e.extend(b, pat, s, p, o)
			if ok {
				out = append(out, nb)
			}
		}
	}
	return out, nil
}

func objVar(pat Pattern) string {
	if pat.O.IsVar() {
		return pat.O.Var
	}
	return ""
}

// boundPattern resolves a pattern under a binding into store ids; ok is
// false when a constant (or bound var) is unknown to the dictionary.
func (e *Engine) boundPattern(pat Pattern, b Binding) (strabon.TriplePattern, bool) {
	var tp strabon.TriplePattern
	fill := func(pt PatTerm, dst *uint64) bool {
		var term rdf.Term
		switch {
		case pt.IsVar():
			t, bound := b[pt.Var]
			if !bound {
				return true // stays a wildcard
			}
			term = t
		default:
			term = pt.Term
		}
		id, err := e.store.LookupID(term)
		if err != nil {
			return false
		}
		*dst = id
		return true
	}
	if !fill(pat.S, &tp.S) || !fill(pat.P, &tp.P) || !fill(pat.O, &tp.O) {
		return tp, false
	}
	return tp, true
}

// extend adds the pattern's variable bindings from a matched row,
// rejecting rows that conflict with existing bindings.
func (e *Engine) extend(b Binding, pat Pattern, s, p, o uint64) (Binding, bool) {
	nb := b
	cloned := false
	bind := func(pt PatTerm, id uint64) bool {
		if !pt.IsVar() {
			return true
		}
		term, ok := e.store.Dict().Decode(id)
		if !ok {
			return false
		}
		if cur, bound := nb[pt.Var]; bound {
			return cur == term
		}
		if !cloned {
			nb = cloneBinding(b)
			cloned = true
		}
		nb[pt.Var] = term
		return true
	}
	if !bind(pat.S, s) || !bind(pat.P, p) || !bind(pat.O, o) {
		return nil, false
	}
	if !cloned {
		nb = cloneBinding(b)
	}
	return nb, true
}

// parseGeom decodes a spatial literal with caching, normalised to WGS84.
func (e *Engine) parseGeom(t rdf.Term) (strdf.SpatialValue, error) {
	key := t.Datatype + "\x00" + t.Value
	e.geomMu.Lock()
	if v, ok := e.geomCache[key]; ok {
		e.geomMu.Unlock()
		return v, nil
	}
	e.geomMu.Unlock()
	v, err := strdf.ParseSpatial(t)
	if err != nil {
		return strdf.SpatialValue{}, err
	}
	if w, err := v.ToWGS84(); err == nil {
		v = w
	}
	e.geomMu.Lock()
	e.geomCache[key] = v
	e.geomMu.Unlock()
	return v, nil
}
