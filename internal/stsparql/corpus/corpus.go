// Package corpus generates the randomized equivalence-test workload: a
// seeded stRDF dataset and a stream of random stSPARQL read queries
// (BGP + FILTER + OPTIONAL + UNION + BIND + spatial predicates) over
// it. It exists so every equivalence suite in the repo — legacy vs.
// vectorized executor, serial vs. morsel-parallel, and primary vs.
// replica — stresses the engine with the same query shapes instead of
// each test inventing a weaker generator.
//
// The package depends only on internal/rdf, so it is importable from
// anywhere (engine tests, replication tests, benchmark drivers) without
// cycles.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/rdf"
)

// NS is the namespace every generated term lives under.
const NS = "http://ex/"

// Seed is the canonical corpus seed shared by the equivalence suites:
// a failure in one suite reproduces in the others on the same queries.
const Seed = 20260729

// Triples generates the seeded dataset: 20 subjects with classes,
// numeric and string properties, WKT point geometries and cross-links,
// drawn from rng (deterministic for a fixed seed).
func Triples(rng *rand.Rand) []rdf.Triple {
	var triples []rdf.Triple
	subjects := make([]rdf.Term, 20)
	for i := range subjects {
		subjects[i] = rdf.IRI(fmt.Sprintf("%ss%d", NS, i))
	}
	classes := []rdf.Term{
		rdf.IRI(NS + "Hotspot"),
		rdf.IRI(NS + "Town"),
		rdf.IRI(NS + "Forest"),
	}
	preds := make([]rdf.Term, 4)
	for i := range preds {
		preds[i] = rdf.IRI(fmt.Sprintf("%sp%d", NS, i))
	}
	for i, s := range subjects {
		triples = append(triples, rdf.NewTriple(s, rdf.IRI(rdf.RDFType), classes[i%len(classes)]))
		// Numeric property on most subjects.
		if rng.Intn(4) != 0 {
			triples = append(triples, rdf.NewTriple(s, preds[0], rdf.IntegerLiteral(int64(rng.Intn(10)))))
		}
		// String property.
		if rng.Intn(3) != 0 {
			triples = append(triples, rdf.NewTriple(s, preds[1], rdf.Literal(fmt.Sprintf("name-%d", rng.Intn(6)))))
		}
		// Geometry: points scattered over a small window.
		if rng.Intn(3) != 0 {
			x := 23.0 + rng.Float64()*2
			y := 37.0 + rng.Float64()*2
			wkt := fmt.Sprintf("POINT (%.4f %.4f)", x, y)
			triples = append(triples, rdf.NewTriple(s, rdf.IRI(NS+"geom"),
				rdf.TypedLiteral(wkt, "http://strdf.di.uoa.gr/ontology#WKT")))
		}
		// Cross-links between subjects.
		for k := 0; k < rng.Intn(3); k++ {
			triples = append(triples, rdf.NewTriple(s, preds[2], subjects[rng.Intn(len(subjects))]))
		}
		// Second numeric property, sparse.
		if rng.Intn(5) == 0 {
			triples = append(triples, rdf.NewTriple(s, preds[3], rdf.DoubleLiteral(rng.Float64()*100)))
		}
	}
	return triples
}

// randPatTerm yields a pattern position: a variable or a constant.
func randPatTerm(rng *rand.Rand, vars []string, consts []string) string {
	if rng.Intn(2) == 0 {
		return "?" + vars[rng.Intn(len(vars))]
	}
	return consts[rng.Intn(len(consts))]
}

// RandQuery draws one random read query over the Triples dataset.
func RandQuery(rng *rand.Rand) string {
	vars := []string{"a", "b", "c", "d"}
	subjConsts := []string{"<http://ex/s1>", "<http://ex/s5>", "<http://ex/s12>"}
	predConsts := []string{"a", "<http://ex/p0>", "<http://ex/p1>", "<http://ex/p2>", "<http://ex/geom>"}
	objConsts := []string{
		"<http://ex/Hotspot>", "<http://ex/Town>", "<http://ex/s3>",
		`"name-2"`, "4",
	}
	pattern := func() string {
		s := randPatTerm(rng, vars, subjConsts)
		p := predConsts[rng.Intn(len(predConsts))]
		if rng.Intn(5) == 0 {
			p = "?" + vars[rng.Intn(len(vars))]
		}
		o := randPatTerm(rng, vars, objConsts)
		return fmt.Sprintf("%s %s %s .", s, p, o)
	}
	var body []string
	nPats := 1 + rng.Intn(3)
	for i := 0; i < nPats; i++ {
		body = append(body, pattern())
	}
	// FILTER variants.
	switch rng.Intn(5) {
	case 0:
		body = append(body, fmt.Sprintf("FILTER(?%s > %d)", vars[rng.Intn(2)], rng.Intn(8)))
	case 1:
		body = append(body, fmt.Sprintf("FILTER(REGEX(?%s, \"name\"))", vars[rng.Intn(2)]))
	case 2:
		body = append(body, fmt.Sprintf(
			`FILTER(strdf:intersects(?%s, "POLYGON ((23 37, 24.5 37, 24.5 38.5, 23 38.5, 23 37))"^^strdf:WKT))`,
			vars[rng.Intn(2)]))
	case 3:
		body = append(body, fmt.Sprintf(
			`FILTER(strdf:distance(?%s, "POINT (23.5 37.5)"^^strdf:WKT) < %d)`,
			vars[rng.Intn(2)], 20000+rng.Intn(100000)))
	}
	// BIND sometimes.
	if rng.Intn(4) == 0 {
		body = append(body, fmt.Sprintf("BIND(?%s + 1 AS ?%s)", vars[rng.Intn(2)], vars[3]))
	}
	// OPTIONAL sometimes.
	if rng.Intn(3) == 0 {
		body = append(body, fmt.Sprintf("OPTIONAL { %s }", pattern()))
	}
	// UNION sometimes.
	if rng.Intn(3) == 0 {
		body = append(body, fmt.Sprintf("{ %s } UNION { %s }", pattern(), pattern()))
	}
	sel := "*"
	if rng.Intn(2) == 0 {
		n := 1 + rng.Intn(3)
		var ps []string
		for i := 0; i < n; i++ {
			ps = append(ps, "?"+vars[i])
		}
		sel = strings.Join(ps, " ")
	}
	distinct := ""
	if rng.Intn(3) == 0 {
		distinct = "DISTINCT "
	}
	suffix := ""
	if rng.Intn(3) == 0 {
		suffix = fmt.Sprintf(" ORDER BY ?%s", vars[rng.Intn(2)])
		if rng.Intn(2) == 0 {
			suffix += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(10))
		}
	}
	return fmt.Sprintf(`PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT %s%s WHERE { %s }%s`, distinct, sel, strings.Join(body, "\n"), suffix)
}

// InsertDataStatement renders triples as an INSERT DATA update — the
// write-side workload for replication tests, shipped through the
// endpoint so it exercises the full journalling path.
func InsertDataStatement(triples []rdf.Triple) string {
	var sb strings.Builder
	sb.WriteString("INSERT DATA {\n")
	for _, t := range triples {
		sb.WriteString(t.S.String())
		sb.WriteByte(' ')
		sb.WriteString(t.P.String())
		sb.WriteByte(' ')
		sb.WriteString(t.O.String())
		sb.WriteString(" .\n")
	}
	sb.WriteString("}")
	return sb.String()
}
