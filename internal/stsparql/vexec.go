package stsparql

import (
	"context"
	"encoding/binary"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/parallel"
	"repro/internal/rdf"
	"repro/internal/strabon"
	"repro/internal/strdf"
)

// The vectorized executor. Solutions are rows of dictionary ids over a
// compact variable-slot map instead of map[string]rdf.Term clones; each
// triple pattern is answered with one batched index probe against a store
// snapshot plus a hash join on the already-bound variables, instead of one
// locked index probe per (binding × pattern) pair; and terms are decoded
// back to rdf.Term only at projection, FILTER and BIND boundaries.
//
// Execution is driven by an explicit physical plan (plan.go): the WHERE
// group compiles once per evaluation into an operator list whose join
// order comes from the snapshot's statistics, and the expensive operators
// — index probes, hash-join probes, filters — run MORSEL-PARALLEL: the
// input row range splits into fixed-size batches pulled by up to
// Engine.MaxParallelism workers from the process-wide slot-budget pool
// (internal/parallel). Each morsel emits into its own output table and
// the outputs are concatenated in morsel order, so the result is
// bit-identical to a serial run at every parallelism level. The
// evaluation context is checked between operators, per morsel, and
// periodically inside long loops, so endpoint timeouts stop work instead
// of orphaning it. See docs/performance.md for the design write-up.

// extraBit marks per-query ids for terms absent from the store dictionary
// (BIND / projection expression results). Extra ids are interned per
// query, so id equality remains term equality across both id families.
const extraBit = uint64(1) << 63

// Morsel tunables. Package variables (not constants) so the equivalence
// tests can force tiny morsels onto small fixtures; production code never
// mutates them.
var (
	// morselMinJoinRows is the smallest probe/materialisation input worth
	// fanning out: hash probes are cheap per row.
	morselMinJoinRows = 4096
	// morselMinFilterRows gates filters and per-row index probes, whose
	// per-row cost (geometry predicates, expression evaluation, index
	// lookups) is far higher.
	morselMinFilterRows = 512
	// morselsPerWorker is the work-stealing granularity: more morsels
	// than workers, so a skewed batch self-balances.
	morselsPerWorker = 4
)

// vtable is the columnar solution table: n rows of `width` slot values,
// flattened row-major. Slot value 0 means "unbound" (dictionary ids start
// at 1). origin[i] records which seed row produced row i; every operator
// emits rows in nondecreasing origin order, which lets UNION and OPTIONAL
// merges reproduce the legacy binding-at-a-time output order exactly.
type vtable struct {
	width  int
	rows   []uint64
	origin []int32
}

func (t *vtable) n() int             { return len(t.origin) }
func (t *vtable) row(i int) []uint64 { return t.rows[i*t.width : (i+1)*t.width] }

// get reads slot s of row i; slots beyond the table's width are unbound.
func (t *vtable) get(i, s int) uint64 {
	if s < 0 || s >= t.width {
		return 0
	}
	return t.rows[i*t.width+s]
}

// append copies src (a row of srcWidth values) into the table, padding new
// slots with unbound.
func (t *vtable) append(src []uint64, origin int32) []uint64 {
	base := len(t.rows)
	t.rows = append(t.rows, src...)
	for k := len(src); k < t.width; k++ {
		t.rows = append(t.rows, 0)
	}
	t.origin = append(t.origin, origin)
	return t.rows[base : base+t.width]
}

// reseed returns a view of the same rows with identity origins, for
// sub-group evaluation whose output is merged back per input row.
func (t *vtable) reseed() *vtable {
	org := make([]int32, t.n())
	for i := range org {
		org[i] = int32(i)
	}
	return &vtable{width: t.width, rows: t.rows, origin: org}
}

// vexec evaluates one statement in dictionary-id space over an immutable
// store snapshot, so no store lock is taken per row or per pattern.
type vexec struct {
	e    *Engine
	ctx  context.Context
	snap *strabon.Snapshot
	vars []string
	slot map[string]int
	// extra holds computed terms outside the store dictionary; extraID
	// interns them. Mutated only by the serial operators (BIND,
	// projection); morsel workers never intern.
	extra   []rdf.Term
	extraID map[rdf.Term]uint64
	buf     []int32 // scratch for Snapshot.MatchRows on serial paths
	scratch Binding // scratch for serial row-wise expression evaluation

	// workers bounds this query's morsel parallelism; plan records the
	// compiled operator DAG with its estimates and measured cardinalities
	// (what EXPLAIN renders).
	workers int
	plan    *groupPlan
	planner *planner
}

func newVexec(ctx context.Context, e *Engine) *vexec {
	// extraID and scratch are allocated on first use.
	snap := e.store.Snapshot()
	return &vexec{
		e:       e,
		ctx:     ctx,
		snap:    snap,
		slot:    map[string]int{},
		workers: e.queryWorkers(),
		planner: &planner{e: e, snap: snap},
	}
}

// seed is the evaluation starting point: one empty solution.
func (v *vexec) seed() *vtable { return &vtable{origin: []int32{0}} }

func (v *vexec) slotOf(name string) int {
	if s, ok := v.slot[name]; ok {
		return s
	}
	return -1
}

func (v *vexec) addSlot(name string) int {
	if s, ok := v.slot[name]; ok {
		return s
	}
	s := len(v.vars)
	v.vars = append(v.vars, name)
	v.slot[name] = s
	return s
}

// term decodes a dictionary or extra id back to its term.
func (v *vexec) term(id uint64) (rdf.Term, bool) {
	if id == 0 {
		return rdf.Term{}, false
	}
	if id&extraBit != 0 {
		return v.extra[id&^extraBit], true
	}
	return v.snap.DecodeTerm(id)
}

// idOf interns a computed term: the dictionary id when the store already
// knows the term, else a per-query extra id. Serial-only (see vexec.extra).
func (v *vexec) idOf(t rdf.Term) uint64 {
	if id, ok := v.snap.Lookup(t); ok {
		return id
	}
	if id, ok := v.extraID[t]; ok {
		return id
	}
	if v.extraID == nil {
		v.extraID = map[rdf.Term]uint64{}
	}
	id := extraBit | uint64(len(v.extra))
	v.extra = append(v.extra, t)
	v.extraID[t] = id
	return id
}

// evalRoot compiles the WHERE group into a physical plan against the
// snapshot statistics, then executes it over the singleton seed row.
func (v *vexec) evalRoot(g *Group) (*vtable, error) {
	v.plan = v.planner.planGroup(g, map[string]bool{}, 1)
	return v.execGroup(v.plan, v.seed())
}

// execGroup runs one compiled group: patterns (scan/join), then BIND,
// FILTER, UNION and OPTIONAL operators, recording measured cardinalities
// on the plan. Once a pattern produces zero rows the remaining patterns
// are skipped (they cannot add rows), matching the legacy pipeline.
func (v *vexec) execGroup(p *groupPlan, in *vtable) (*vtable, error) {
	cur := in
	skipPatterns := false
	for _, n := range p.nodes {
		if err := v.ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		switch n.kind {
		case nodeScan, nodeJoin:
			if skipPatterns {
				continue
			}
			cur, err = v.evalPattern(n, cur, p.hints)
			if err == nil && cur.n() == 0 {
				skipPatterns = true
			}
		case nodeBind:
			cur = v.evalBind(n.bind, cur)
		case nodeFilter:
			cur, err = v.evalFilterTable(n, cur)
		case nodeUnion:
			cur, err = v.evalUnion(n, cur)
		case nodeOptional:
			cur, err = v.evalOptional(n, cur)
		}
		if err != nil {
			return nil, err
		}
		n.ran = true
		n.actual += cur.n()
	}
	return cur, nil
}

// runMorsels executes build over the input range [0, n) in morsel
// batches on the shared pool, concatenating the per-morsel output tables
// in morsel order — bit-identical to one serial build(0, n) call.
// Inputs below minRows (or a worker bound of 1) run serial. Returns the
// assembled table, the morsel count, and the first error in morsel
// order (context cancellation surfaces as the context's error).
func (v *vexec) runMorsels(n, minRows, width int, build func(lo, hi int, out *vtable) error) (*vtable, int, error) {
	workers := v.workers
	if workers <= 1 || n < minRows {
		out := &vtable{width: width}
		err := build(0, n, out)
		if err == nil {
			err = v.ctx.Err()
		}
		return out, 1, err
	}
	size := (n + workers*morselsPerWorker - 1) / (workers * morselsPerWorker)
	if size < 64 {
		size = 64
	}
	nm := (n + size - 1) / size
	parts := make([]*vtable, nm)
	errs := make([]error, nm)
	parallel.Morsels(n, size, workers, func(m, lo, hi int) {
		if err := v.ctx.Err(); err != nil {
			errs[m] = err
			return
		}
		part := &vtable{width: width}
		errs[m] = build(lo, hi, part)
		parts[m] = part
	})
	for _, err := range errs {
		if err != nil {
			return nil, nm, err
		}
	}
	if err := v.ctx.Err(); err != nil {
		return nil, nm, err
	}
	total := 0
	for _, p := range parts {
		total += p.n()
	}
	out := &vtable{width: width, rows: make([]uint64, 0, total*width), origin: make([]int32, 0, total)}
	for _, p := range parts {
		out.rows = append(out.rows, p.rows...)
		out.origin = append(out.origin, p.origin...)
	}
	return out, nm, nil
}

// Variable-position classification for one pattern against one table.
const (
	posConst = iota // concrete term
	posJoin         // variable bound (non-zero) in every row: a join key
	posNew          // variable with no slot, or unbound in every row
	posMixed        // bound in some rows only (post-OPTIONAL/UNION shapes)
)

// evalPattern answers one triple pattern for all current solutions: one
// batched candidate probe from the snapshot index, then a hash join on the
// bound variables, morsel-parallel over the probe side. The rare
// mixed-boundness case falls back to a per-row probe (still id-space,
// lock-free, and morsel-parallel over rows).
func (v *vexec) evalPattern(n *planNode, in *vtable, hints map[string]geo.Envelope) (*vtable, error) {
	pat := n.pat
	if in.n() == 0 {
		return in, nil
	}
	pos := [3]PatTerm{pat.S, pat.P, pat.O}
	var constPat strabon.TriplePattern
	constDst := [3]*uint64{&constPat.S, &constPat.P, &constPat.O}
	for i, pt := range pos {
		if pt.IsVar() {
			continue
		}
		id, ok := v.snap.Lookup(pt.Term)
		if !ok {
			// Unknown constant: the pattern matches nothing.
			return &vtable{width: in.width}, nil
		}
		*constDst[i] = id
	}
	kind := [3]int{}
	slotAt := [3]int{-1, -1, -1}
	mixed := false
	for i, pt := range pos {
		if !pt.IsVar() {
			kind[i] = posConst
			continue
		}
		s := v.slotOf(pt.Var)
		if s < 0 || s >= in.width {
			kind[i] = posNew
			continue
		}
		slotAt[i] = s
		someBound, someUnbound := false, false
		for r := 0; r < in.n() && !(someBound && someUnbound); r++ {
			if in.get(r, s) != 0 {
				someBound = true
			} else {
				someUnbound = true
			}
		}
		switch {
		case someBound && someUnbound:
			kind[i] = posMixed
			mixed = true
		case someBound:
			kind[i] = posJoin
		default:
			kind[i] = posNew
		}
	}
	// Spatial pushdown set: candidate object ids inside the filter hint's
	// envelope. It constrains only rows where the object variable is still
	// unbound, matching the legacy executor.
	var spatialSet map[uint64]bool
	if ov := objVar(pat); ov != "" && (kind[2] == posNew || kind[2] == posMixed) {
		if env, ok := hints[ov]; ok {
			ids := v.snap.SpatialCandidates(env)
			spatialSet = make(map[uint64]bool, len(ids))
			for _, id := range ids {
				spatialSet[id] = true
			}
		}
	}
	// Ensure slots for the new variables; the output covers every slot
	// allocated so far (holes stay unbound). Slot allocation happens
	// before any morsel fans out, so workers only read the slot map.
	for i, pt := range pos {
		if kind[i] == posNew && slotAt[i] < 0 {
			slotAt[i] = v.addSlot(pt.Var)
		}
	}
	width := len(v.vars)
	if width < in.width {
		width = in.width
	}
	var joinPos []int
	for i := 0; i < 3; i++ {
		if kind[i] == posJoin {
			joinPos = append(joinPos, i)
		}
	}
	if mixed {
		return v.evalPatternPerRow(n, pat, constPat, kind, slotAt, in, width, spatialSet)
	}
	// When the solution side is much smaller than the candidate side of a
	// join, probing the index once per row (with the row's bound ids
	// narrowing the probe) beats building a hash table over the
	// candidates — this is the legacy strategy, minus its per-row lock and
	// term decoding.
	if len(joinPos) > 0 && in.n()*8 < v.snap.Cardinality(constPat) {
		return v.evalPatternPerRow(n, pat, constPat, kind, slotAt, in, width, spatialSet)
	}
	col := func(i int, c int32) uint64 {
		return v.snap.ColID(i, c)
	}
	// One batched probe for the pattern's constants.
	cands := v.snap.MatchRows(constPat, &v.buf)
	// Pre-filter candidates once: spatial pruning plus consistency of a
	// variable occurring in several new positions (e.g. ?x ?p ?x).
	valid := cands
	needFilter := spatialSet != nil
	var dupNew [][2]int
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if kind[i] == posNew && kind[j] == posNew && slotAt[i] == slotAt[j] {
				dupNew = append(dupNew, [2]int{i, j})
				needFilter = true
			}
		}
	}
	if needFilter {
		filtered := make([]int32, 0, len(cands))
	candLoop:
		for _, c := range cands {
			if spatialSet != nil && !spatialSet[v.snap.ColID(2, c)] {
				continue
			}
			for _, d := range dupNew {
				if col(d[0], c) != col(d[1], c) {
					continue candLoop
				}
			}
			filtered = append(filtered, c)
		}
		valid = filtered
	}
	if len(valid) == 0 {
		return &vtable{width: width}, nil
	}
	var newAssign [][2]int // (position, slot) pairs to fill per emitted row
	for i := 0; i < 3; i++ {
		if kind[i] == posNew {
			newAssign = append(newAssign, [2]int{i, slotAt[i]})
		}
	}
	emitTo := func(out *vtable, r int, c int32) {
		row := out.append(in.row(r), in.origin[r])
		for _, a := range newAssign {
			row[a[1]] = col(a[0], c)
		}
	}
	// Small joins run faster by scanning than by building a hash table
	// (and are too small to be worth a goroutine handoff).
	if len(joinPos) > 0 && (len(valid) <= 8 || in.n()*len(valid) <= 4096) {
		out := &vtable{width: width, rows: make([]uint64, 0, in.n()*width), origin: make([]int32, 0, in.n())}
		for r := 0; r < in.n(); r++ {
		scanLoop:
			for _, c := range valid {
				for _, i := range joinPos {
					if col(i, c) != in.get(r, slotAt[i]) {
						continue scanLoop
					}
				}
				emitTo(out, r, c)
			}
		}
		return out, nil
	}
	var (
		out *vtable
		nm  int
		err error
	)
	switch len(joinPos) {
	case 0:
		// No shared variables: cross product. For the ubiquitous
		// single-input-row shape (the first pattern of a group) this is
		// the candidate materialisation, morsel-parallel over candidates;
		// otherwise morsels split the input rows.
		if in.n() == 1 {
			out, nm, err = v.runMorsels(len(valid), morselMinJoinRows, width, func(lo, hi int, part *vtable) error {
				part.rows = make([]uint64, 0, (hi-lo)*width)
				part.origin = make([]int32, 0, hi-lo)
				for k := lo; k < hi; k++ {
					if (k-lo)&8191 == 8191 {
						if err := v.ctx.Err(); err != nil {
							return err
						}
					}
					emitTo(part, 0, valid[k])
				}
				return nil
			})
		} else {
			out, nm, err = v.runMorsels(in.n(), morselMinJoinRows, width, func(lo, hi int, part *vtable) error {
				emitted := 0
				for r := lo; r < hi; r++ {
					for _, c := range valid {
						if emitted&8191 == 8191 {
							if err := v.ctx.Err(); err != nil {
								return err
							}
						}
						emitTo(part, r, c)
						emitted++
					}
				}
				return nil
			})
		}
	case 1:
		jp := joinPos[0]
		js := slotAt[jp]
		h := groupByKey(valid, func(c int32) uint64 { return col(jp, c) })
		out, nm, err = v.runMorsels(in.n(), morselMinJoinRows, width, func(lo, hi int, part *vtable) error {
			part.rows = make([]uint64, 0, (hi-lo)*width)
			part.origin = make([]int32, 0, hi-lo)
			for r := lo; r < hi; r++ {
				if (r-lo)&8191 == 8191 {
					if err := v.ctx.Err(); err != nil {
						return err
					}
				}
				for _, c := range h[in.get(r, js)] {
					emitTo(part, r, c)
				}
			}
			return nil
		})
	default:
		key3 := func(c int32) [3]uint64 {
			var k [3]uint64
			for _, i := range joinPos {
				k[i] = col(i, c)
			}
			return k
		}
		h := groupByKey(valid, key3)
		out, nm, err = v.runMorsels(in.n(), morselMinJoinRows, width, func(lo, hi int, part *vtable) error {
			part.rows = make([]uint64, 0, (hi-lo)*width)
			part.origin = make([]int32, 0, hi-lo)
			var key [3]uint64
			for r := lo; r < hi; r++ {
				if (r-lo)&8191 == 8191 {
					if err := v.ctx.Err(); err != nil {
						return err
					}
				}
				key = [3]uint64{}
				for _, i := range joinPos {
					key[i] = in.get(r, slotAt[i])
				}
				for _, c := range h[key] {
					emitTo(part, r, c)
				}
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	if nm > n.morsels {
		n.morsels = nm
	}
	return out, nil
}

// groupByKey buckets candidates by join key into slices carved out of one
// shared arena: a counting pass sizes each bucket, so no per-key slice
// ever reallocates. The result is read-only and safe for concurrent
// probe morsels.
func groupByKey[K comparable](cands []int32, key func(int32) K) map[K][]int32 {
	cnt := make(map[K]int32, len(cands))
	for _, c := range cands {
		cnt[key(c)]++
	}
	arena := make([]int32, len(cands))
	h := make(map[K][]int32, len(cnt))
	off := int32(0)
	for k, n := range cnt {
		h[k] = arena[off : off : off+n]
		off += n
	}
	for _, c := range cands {
		k := key(c)
		h[k] = append(h[k], c)
	}
	return h
}

// evalPatternPerRow handles patterns whose variables are bound in only
// some rows (and the adaptive few-rows-vs-many-candidates join): each row
// probes the index with its own bound ids, morsel-parallel over rows with
// a per-morsel probe buffer.
func (v *vexec) evalPatternPerRow(n *planNode, pat Pattern, constPat strabon.TriplePattern, kind [3]int, slotAt [3]int, in *vtable, width int, spatialSet map[uint64]bool) (*vtable, error) {
	pos := [3]PatTerm{pat.S, pat.P, pat.O}
	out, nm, err := v.runMorsels(in.n(), morselMinFilterRows, width, func(lo, hi int, part *vtable) error {
		var buf []int32
		part.rows = make([]uint64, 0, (hi-lo)*width)
		part.origin = make([]int32, 0, hi-lo)
		for r := lo; r < hi; r++ {
			if (r-lo)&1023 == 1023 {
				if err := v.ctx.Err(); err != nil {
					return err
				}
			}
			tp := constPat
			dst := [3]*uint64{&tp.S, &tp.P, &tp.O}
			for i := range pos {
				if slotAt[i] >= 0 {
					if id := in.get(r, slotAt[i]); id != 0 {
						// An extra (per-query) id can never appear in a stored
						// triple; the posting lookup correctly finds nothing.
						*dst[i] = id
					}
				}
			}
			cands := v.snap.MatchRows(tp, &buf)
		candLoop:
			for _, c := range cands {
				s, p, o := v.snap.Row(c)
				vals := [3]uint64{s, p, o}
				// Consistency across positions sharing a variable that this
				// row leaves unbound, and spatial pruning for unbound objects.
				if spatialSet != nil && kind[2] != posConst && in.get(r, slotAt[2]) == 0 && !spatialSet[o] {
					continue
				}
				for i := 0; i < 3; i++ {
					for j := i + 1; j < 3; j++ {
						if pos[i].IsVar() && pos[j].IsVar() && pos[i].Var == pos[j].Var && vals[i] != vals[j] {
							continue candLoop
						}
					}
				}
				row := part.append(in.row(r), in.origin[r])
				for i := range pos {
					if slotAt[i] >= 0 {
						row[slotAt[i]] = vals[i]
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if nm > n.morsels {
		n.morsels = nm
	}
	return out, nil
}

// evalBind appends/overwrites a slot with a computed term per row,
// decoding only the variables the expression references. Serial: BIND
// interns computed terms into the shared per-query extra dictionary.
func (v *vexec) evalBind(bc BindClause, in *vtable) *vtable {
	s := v.addSlot(bc.Var)
	refs := v.resolveRefs(exprVars(bc.Expr))
	out := &vtable{width: len(v.vars), rows: make([]uint64, 0, in.n()*len(v.vars)), origin: make([]int32, 0, in.n())}
	for r := 0; r < in.n(); r++ {
		row := out.append(in.row(r), in.origin[r])
		v.scratch = v.bindingInto(v.scratch, refs, in, r)
		if t, err := v.e.evalExpr(bc.Expr, v.scratch); err == nil {
			row[s] = v.idOf(t)
		}
	}
	return out
}

// evalFilterTable keeps rows passing the filter, morsel-parallel over
// rows. Spatial predicate and distance-comparison filters run entirely
// in id space against the snapshot's geometry cache; everything else
// decodes just the referenced variables per row into a morsel-local
// scratch binding (Engine.evalExpr is safe for concurrent evaluations).
func (v *vexec) evalFilterTable(n *planNode, in *vtable) (*vtable, error) {
	f := n.filt
	if in.n() == 0 {
		return in, nil
	}
	fast := v.compileFastFilter(f)
	// Resolved unconditionally BEFORE the fan-out: the closure below runs
	// on concurrent workers, and a compiled fast filter may decline
	// individual rows (handled=false), so the generic path must never
	// lazily initialise shared state from inside a morsel.
	refs := v.resolveRefs(exprVars(f))
	out, nm, err := v.runMorsels(in.n(), morselMinFilterRows, in.width, func(lo, hi int, part *vtable) error {
		var scratch Binding // morsel-local: never shared across workers
		part.rows = make([]uint64, 0, (hi-lo)*in.width)
		part.origin = make([]int32, 0, hi-lo)
		for r := lo; r < hi; r++ {
			if (r-lo)&1023 == 1023 {
				if err := v.ctx.Err(); err != nil {
					return err
				}
			}
			keep, handled := false, false
			if fast != nil {
				keep, handled = fast(in, r)
			}
			if !handled {
				scratch = v.bindingInto(scratch, refs, in, r)
				var err error
				keep, err = v.e.evalFilter(f, scratch)
				if err != nil {
					return err
				}
			}
			if keep {
				part.append(in.row(r), in.origin[r])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if nm > n.morsels {
		n.morsels = nm
	}
	return out, nil
}

// evalUnion runs every alternative batched over all current rows, then
// interleaves the results per input row (alternatives in syntactic order)
// to match the legacy binding-at-a-time concatenation exactly.
func (v *vexec) evalUnion(n *planNode, in *vtable) (*vtable, error) {
	if in.n() == 0 {
		return in, nil
	}
	reseed := in.reseed()
	results := make([]*vtable, len(n.alts))
	width := in.width
	for i, alt := range n.alts {
		r, err := v.execGroup(alt, reseed)
		if err != nil {
			return nil, err
		}
		results[i] = r
		if r.width > width {
			width = r.width
		}
	}
	out := &vtable{width: width}
	cursors := make([]int, len(n.alts))
	for k := 0; k < in.n(); k++ {
		for i, res := range results {
			for cursors[i] < res.n() && res.origin[cursors[i]] == int32(k) {
				out.append(res.row(cursors[i]), in.origin[k])
				cursors[i]++
			}
		}
	}
	return out, nil
}

// evalOptional left-joins one optional group: rows with sub-matches are
// replaced by them, rows without survive unchanged.
func (v *vexec) evalOptional(n *planNode, in *vtable) (*vtable, error) {
	if in.n() == 0 {
		return in, nil
	}
	sub, err := v.execGroup(n.opt, in.reseed())
	if err != nil {
		return nil, err
	}
	width := in.width
	if sub.width > width {
		width = sub.width
	}
	out := &vtable{width: width}
	cursor := 0
	for k := 0; k < in.n(); k++ {
		matched := false
		for cursor < sub.n() && sub.origin[cursor] == int32(k) {
			out.append(sub.row(cursor), in.origin[k])
			cursor++
			matched = true
		}
		if !matched {
			out.append(in.row(k), in.origin[k])
		}
	}
	return out, nil
}

// refSlot pairs a referenced variable with its slot (-1: never bound).
type refSlot struct {
	name string
	slot int
}

func (v *vexec) resolveRefs(names []string) []refSlot {
	out := make([]refSlot, 0, len(names))
	for _, n := range names {
		out = append(out, refSlot{name: n, slot: v.slotOf(n)})
	}
	return out
}

// bindingInto materialises just the referenced variables of one row into
// b (allocated when nil, cleared otherwise) and returns it. Callers own
// b — serial paths reuse v.scratch, morsel workers keep their own.
func (v *vexec) bindingInto(b Binding, refs []refSlot, in *vtable, r int) Binding {
	if b == nil {
		b = Binding{}
	}
	for k := range b {
		delete(b, k)
	}
	for _, rs := range refs {
		id := in.get(r, rs.slot)
		if id == 0 {
			continue
		}
		if t, ok := v.term(id); ok {
			b[rs.name] = t
		}
	}
	return b
}

// exprVars collects the distinct variable names referenced by an
// expression.
func exprVars(ex Expression) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(Expression)
	walk = func(ex Expression) {
		switch t := ex.(type) {
		case *EVar:
			if !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		case *EUnary:
			walk(t.X)
		case *EBinary:
			walk(t.Left)
			walk(t.Right)
		case *ECall:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	walk(ex)
	return out
}

// --- id-space fast paths for spatial filters -------------------------------

// geomSrc yields a geometry per row: either a constant (parsed once at
// compile time) or a variable slot resolved through the snapshot's
// geometry cache.
type geomSrc struct {
	slot  int // -1 when constant
	c     strdf.SpatialValue
	isVar bool
}

// fetch resolves the geometry for one row. falseNow reports that the
// legacy evaluator would error here (unbound variable, unparsable term),
// which a FILTER treats as false.
func (v *vexec) fetchGeom(src geomSrc, in *vtable, r int) (strdf.SpatialValue, bool) {
	if !src.isVar {
		return src.c, true
	}
	id := in.get(r, src.slot)
	if id == 0 {
		return strdf.SpatialValue{}, false
	}
	if g, ok := v.snap.Geometry(id); ok {
		return g, true
	}
	// Computed terms and literals outside the object-geometry cache take
	// the engine's parse cache.
	t, ok := v.term(id)
	if !ok {
		return strdf.SpatialValue{}, false
	}
	g, err := v.e.parseGeom(t)
	if err != nil {
		return strdf.SpatialValue{}, false
	}
	return g, true
}

func (v *vexec) compileGeomArg(a Expression) (geomSrc, bool) {
	switch at := a.(type) {
	case *EVar:
		return geomSrc{slot: v.slotOf(at.Name), isVar: true}, true
	case *ELit:
		if at.Term.IsSpatial() {
			if g, err := v.e.parseGeom(at.Term); err == nil {
				return geomSrc{slot: -1, c: g}, true
			}
		}
	}
	return geomSrc{}, false
}

var spatialPredicates = map[string]func(a, b geo.Geometry) bool{
	"intersects":  geo.Intersects,
	"anyinteract": geo.Intersects,
	"within":      geo.Within,
	"contains":    geo.Contains,
	"disjoint":    geo.Disjoint,
	"touches":     geo.Touches,
	"crosses":     geo.Crosses,
	"overlaps":    geo.Overlaps,
	"equals":      geo.Equals,
}

// compileFastFilter builds an id-space evaluator for the filter shapes
// that dominate stSPARQL workloads: binary spatial predicates, distance
// comparisons, and conjunctions of those. It returns nil when the shape
// is not covered; the returned function's second result is false when the
// row needs the generic (decoding) evaluator. The compiled closures keep
// no per-row state, so filter morsels share them safely.
func (v *vexec) compileFastFilter(f Expression) func(*vtable, int) (bool, bool) {
	switch t := f.(type) {
	case *EBinary:
		switch t.Op {
		case "&&":
			l := v.compileFastFilter(t.Left)
			r := v.compileFastFilter(t.Right)
			if l == nil || r == nil {
				return nil
			}
			return func(in *vtable, row int) (bool, bool) {
				lk, lok := l(in, row)
				if !lok {
					return false, false
				}
				if !lk {
					return false, true
				}
				return r(in, row)
			}
		case "<", "<=", ">", ">=", "=", "!=":
			call, lit, flipped := distanceShape(t)
			if call == nil {
				return nil
			}
			limit, ok := numericValue(lit.Term)
			if !ok {
				return nil
			}
			g1, ok1 := v.compileGeomArg(call.Args[0])
			g2, ok2 := v.compileGeomArg(call.Args[1])
			if !ok1 || !ok2 {
				return nil
			}
			op := t.Op
			if flipped {
				op = flipCmp(op)
			}
			return func(in *vtable, row int) (bool, bool) {
				a, ok := v.fetchGeom(g1, in, row)
				if !ok {
					return false, true
				}
				b, ok := v.fetchGeom(g2, in, row)
				if !ok {
					return false, true
				}
				d := geo.GeodesicDistanceMeters(a.Geom, b.Geom)
				return cmpFloat(op, d, limit), true
			}
		}
	case *ECall:
		if t.NS != "strdf" && t.NS != "geof" {
			return nil
		}
		pred, ok := spatialPredicates[t.Name]
		if !ok || len(t.Args) != 2 {
			return nil
		}
		g1, ok1 := v.compileGeomArg(t.Args[0])
		g2, ok2 := v.compileGeomArg(t.Args[1])
		if !ok1 || !ok2 {
			return nil
		}
		return func(in *vtable, row int) (bool, bool) {
			a, ok := v.fetchGeom(g1, in, row)
			if !ok {
				return false, true
			}
			b, ok := v.fetchGeom(g2, in, row)
			if !ok {
				return false, true
			}
			return pred(a.Geom, b.Geom), true
		}
	}
	return nil
}

// distanceShape matches strdf:distance(x, y) OP literal (either operand
// order); flipped reports that the call was on the right.
func distanceShape(t *EBinary) (*ECall, *ELit, bool) {
	if c, ok := t.Left.(*ECall); ok && (c.NS == "strdf" || c.NS == "geof") && c.Name == "distance" && len(c.Args) == 2 {
		if lit, ok := t.Right.(*ELit); ok {
			return c, lit, false
		}
	}
	if c, ok := t.Right.(*ECall); ok && (c.NS == "strdf" || c.NS == "geof") && c.Name == "distance" && len(c.Args) == 2 {
		if lit, ok := t.Left.(*ELit); ok {
			return c, lit, true
		}
	}
	return nil, nil, false
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and != are symmetric
}

func cmpFloat(op string, a, b float64) bool {
	switch op {
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	case "=":
		return a == b
	case "!=":
		return a != b
	}
	return false
}

// --- SELECT pipeline -------------------------------------------------------

// evalSelectVec is the vectorized SELECT: the group evaluates in id space,
// DISTINCT deduplicates on id tuples, and only the surviving rows are
// decoded (after OFFSET/LIMIT when there is no ORDER BY).
func (e *Engine) evalSelectVec(ctx context.Context, q *Query) (*Result, error) {
	return e.evalSelectVecWith(newVexec(ctx, e), q)
}

// evalSelectVecWith runs the SELECT pipeline over a caller-supplied
// executor, which EXPLAIN reuses to harvest the measured plan.
func (e *Engine) evalSelectVecWith(v *vexec, q *Query) (*Result, error) {
	tb, err := v.evalRoot(q.Where)
	if err != nil {
		return nil, err
	}
	if len(q.GroupBy) > 0 || hasAggregate(q.Projections) {
		return e.evalAggregateSelect(q, v.decodeTable(tb))
	}
	var vars []string
	if q.SelectStar {
		vars = v.starVars(tb)
	} else {
		for _, pr := range q.Projections {
			vars = append(vars, pr.Var)
		}
	}
	for _, pr := range q.Projections {
		if pr.Expr != nil {
			// Expression projections need decoded rows; run the legacy
			// projection pipeline over the decoded table.
			return e.projectSelect(q, vars, v.decodeTable(tb))
		}
	}
	slots := make([]int, len(vars))
	for i, name := range vars {
		slots[i] = v.slotOf(name)
	}
	idx := make([]int, tb.n())
	for i := range idx {
		idx[i] = i
	}
	if q.Distinct {
		idx = distinctRowIdx(tb, slots, idx)
	}
	if len(q.OrderBy) == 0 {
		idx = sliceIdx(idx, q.Offset, q.Limit)
		return &Result{Vars: vars, Bindings: v.decodeRows(tb, idx, vars, slots)}, nil
	}
	// ORDER BY over projected plain variables sorts row indices on decoded
	// key terms, deferring full materialisation to after OFFSET/LIMIT.
	// (Only projected variables: the legacy pipeline sorts the projected
	// bindings, where anything else is unbound.)
	if keySlots, ok := orderKeySlots(q.OrderBy, vars, slots); ok {
		v.sortIdx(tb, idx, q.OrderBy, keySlots)
		idx = sliceIdx(idx, q.Offset, q.Limit)
		return &Result{Vars: vars, Bindings: v.decodeRows(tb, idx, vars, slots)}, nil
	}
	out := v.decodeRows(tb, idx, vars, slots)
	if err := e.orderBindings(out, q.OrderBy); err != nil {
		return nil, err
	}
	out = sliceBindings(out, q.Offset, q.Limit)
	return &Result{Vars: vars, Bindings: out}, nil
}

// orderKeySlots resolves ORDER BY keys to projection slots when every key
// is a plain projected variable.
func orderKeySlots(keys []OrderKey, vars []string, slots []int) ([]int, bool) {
	out := make([]int, len(keys))
	for i, k := range keys {
		ev, isVar := k.Expr.(*EVar)
		if !isVar {
			return nil, false
		}
		found := -1
		for j, name := range vars {
			if name == ev.Name {
				found = slots[j]
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		out[i] = found
	}
	return out, true
}

// sortIdx stable-sorts row indices by pre-decoded ORDER BY key terms,
// mirroring the legacy comparator (rows where either side is unbound
// compare equal on that key).
func (v *vexec) sortIdx(tb *vtable, idx []int, keys []OrderKey, keySlots []int) {
	k := len(keySlots)
	skeys := make([]sortKey, len(idx)*k)
	for i, r := range idx {
		for j, s := range keySlots {
			if id := tb.get(r, s); id != 0 {
				if t, ok := v.term(id); ok {
					skeys[i*k+j] = makeSortKey(t)
				}
			}
		}
	}
	perm := make([]int, len(idx))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ta := skeys[perm[a]*k : perm[a]*k+k]
		tb2 := skeys[perm[b]*k : perm[b]*k+k]
		for j := range keys {
			vi, vj := &ta[j], &tb2[j]
			if vi.term.IsZero() || vj.term.IsZero() {
				continue
			}
			c := compareSortKeys(vi, vj)
			if c == 0 {
				continue
			}
			if keys[j].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([]int, len(idx))
	for i, p := range perm {
		sorted[i] = idx[p]
	}
	copy(idx, sorted)
}

// sortKey caches the numeric/temporal interpretation of an ORDER BY key
// term so comparisons during the sort don't re-parse literals.
type sortKey struct {
	term   rdf.Term
	num    float64
	when   time.Time
	numOK  bool
	timeOK bool
}

func makeSortKey(t rdf.Term) sortKey {
	k := sortKey{term: t}
	if f, ok := numericValue(t); ok {
		k.num, k.numOK = f, true
	} else if tm, ok := timeValue(t); ok {
		k.when, k.timeOK = tm, true
	}
	return k
}

// compareSortKeys mirrors compareTerms over the cached interpretations.
func compareSortKeys(a, b *sortKey) int {
	if a.numOK && b.numOK {
		switch {
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		default:
			return 0
		}
	}
	if a.timeOK && b.timeOK {
		switch {
		case a.when.Before(b.when):
			return -1
		case a.when.After(b.when):
			return 1
		default:
			return 0
		}
	}
	return compareTerms(a.term, b.term)
}

// projectSelect is the legacy projection/distinct/order/slice pipeline
// over already-decoded bindings, shared by the expression-projection path.
func (e *Engine) projectSelect(q *Query, vars []string, bindings []Binding) (*Result, error) {
	out := make([]Binding, 0, len(bindings))
	for _, b := range bindings {
		nb := Binding{}
		for _, v := range vars {
			if t, ok := b[v]; ok {
				nb[v] = t
			}
		}
		for _, pr := range q.Projections {
			if pr.Expr == nil {
				continue
			}
			t, err := e.evalExpr(pr.Expr, b)
			if err == nil && !t.IsZero() {
				nb[pr.Var] = t
			}
		}
		out = append(out, nb)
	}
	if q.Distinct {
		out = distinctBindings(vars, out)
	}
	if len(q.OrderBy) > 0 {
		if err := e.orderBindings(out, q.OrderBy); err != nil {
			return nil, err
		}
	}
	out = sliceBindings(out, q.Offset, q.Limit)
	return &Result{Vars: vars, Bindings: out}, nil
}

func sliceBindings(out []Binding, offset, limit int) []Binding {
	if offset > 0 {
		if offset >= len(out) {
			out = nil
		} else {
			out = out[offset:]
		}
	}
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func sliceIdx(idx []int, offset, limit int) []int {
	if offset > 0 {
		if offset >= len(idx) {
			idx = nil
		} else {
			idx = idx[offset:]
		}
	}
	if limit >= 0 && len(idx) > limit {
		idx = idx[:limit]
	}
	return idx
}

// distinctRowIdx deduplicates rows on the projected slots' id tuples —
// id equality is term equality, so no decoding is needed.
func distinctRowIdx(tb *vtable, slots []int, idx []int) []int {
	seen := make(map[string]struct{}, len(idx))
	key := make([]byte, len(slots)*8)
	out := idx[:0]
	for _, r := range idx {
		for i, s := range slots {
			binary.LittleEndian.PutUint64(key[i*8:], tb.get(r, s))
		}
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		out = append(out, r)
	}
	return out
}

// starVars lists the variables bound in at least one row, sorted — the
// SELECT * projection.
func (v *vexec) starVars(tb *vtable) []string {
	var vars []string
	for s := 0; s < tb.width && s < len(v.vars); s++ {
		for r := 0; r < tb.n(); r++ {
			if tb.get(r, s) != 0 {
				vars = append(vars, v.vars[s])
				break
			}
		}
	}
	sort.Strings(vars)
	return vars
}

// decodeRows materialises the selected rows' projected variables.
func (v *vexec) decodeRows(tb *vtable, idx []int, vars []string, slots []int) []Binding {
	out := make([]Binding, 0, len(idx))
	for _, r := range idx {
		nb := make(Binding, len(vars))
		for i, s := range slots {
			id := tb.get(r, s)
			if id == 0 {
				continue
			}
			if t, ok := v.term(id); ok {
				nb[vars[i]] = t
			}
		}
		out = append(out, nb)
	}
	return out
}

// decodeTable materialises every row with every bound variable — the
// boundary for aggregates, CONSTRUCT templates and updates. The store ids
// are decoded in one batch under a single dictionary lock.
func (v *vexec) decodeTable(tb *vtable) []Binding {
	terms := make([]rdf.Term, len(tb.rows))
	v.snap.DecodeAll(tb.rows, terms)
	out := make([]Binding, 0, tb.n())
	for r := 0; r < tb.n(); r++ {
		nb := make(Binding, tb.width)
		base := r * tb.width
		for s := 0; s < tb.width; s++ {
			id := tb.rows[base+s]
			if id == 0 {
				continue
			}
			if id&extraBit != 0 {
				nb[v.vars[s]] = v.extra[id&^extraBit]
				continue
			}
			t := terms[base+s]
			if !t.IsZero() {
				nb[v.vars[s]] = t
			}
		}
		out = append(out, nb)
	}
	return out
}
