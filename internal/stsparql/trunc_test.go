package stsparql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// TestTruncRunesUTF8Safe: truncation never splits a multi-byte rune.
func TestTruncRunesUTF8Safe(t *testing.T) {
	greek := strings.Repeat("Ολυμπία", 20)
	for max := 1; max < 60; max++ {
		got := truncRunes(greek, max)
		if !utf8.ValidString(got) {
			t.Fatalf("max=%d: invalid UTF-8 %q", max, got)
		}
		if len(got) > max+len("…") {
			t.Fatalf("max=%d: result %d bytes", max, len(got))
		}
	}
	if got := truncRunes("short", 52); got != "short" {
		t.Fatalf("short string mangled: %q", got)
	}
}
