package stsparql

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/strabon"
)

// The old-vs-new equivalence suite: random BGP + FILTER + OPTIONAL +
// UNION + BIND queries over a seeded store must return identical sorted
// bindings from the legacy binding-at-a-time evaluator and the vectorized
// id-space executor, in every ablation mode.

const equivNS = "http://ex/"

func equivStore(rng *rand.Rand) *strabon.Store {
	st := strabon.NewStore()
	var triples []rdf.Triple
	subjects := make([]rdf.Term, 20)
	for i := range subjects {
		subjects[i] = rdf.IRI(fmt.Sprintf("%ss%d", equivNS, i))
	}
	classes := []rdf.Term{
		rdf.IRI(equivNS + "Hotspot"),
		rdf.IRI(equivNS + "Town"),
		rdf.IRI(equivNS + "Forest"),
	}
	preds := make([]rdf.Term, 4)
	for i := range preds {
		preds[i] = rdf.IRI(fmt.Sprintf("%sp%d", equivNS, i))
	}
	for i, s := range subjects {
		triples = append(triples, rdf.NewTriple(s, rdf.IRI(rdf.RDFType), classes[i%len(classes)]))
		// Numeric property on most subjects.
		if rng.Intn(4) != 0 {
			triples = append(triples, rdf.NewTriple(s, preds[0], rdf.IntegerLiteral(int64(rng.Intn(10)))))
		}
		// String property.
		if rng.Intn(3) != 0 {
			triples = append(triples, rdf.NewTriple(s, preds[1], rdf.Literal(fmt.Sprintf("name-%d", rng.Intn(6)))))
		}
		// Geometry: points scattered over a small window.
		if rng.Intn(3) != 0 {
			x := 23.0 + rng.Float64()*2
			y := 37.0 + rng.Float64()*2
			wkt := fmt.Sprintf("POINT (%.4f %.4f)", x, y)
			triples = append(triples, rdf.NewTriple(s, rdf.IRI(equivNS+"geom"),
				rdf.TypedLiteral(wkt, "http://strdf.di.uoa.gr/ontology#WKT")))
		}
		// Cross-links between subjects.
		for k := 0; k < rng.Intn(3); k++ {
			triples = append(triples, rdf.NewTriple(s, preds[2], subjects[rng.Intn(len(subjects))]))
		}
		// Second numeric property, sparse.
		if rng.Intn(5) == 0 {
			triples = append(triples, rdf.NewTriple(s, preds[3], rdf.DoubleLiteral(rng.Float64()*100)))
		}
	}
	st.AddAll(triples)
	return st
}

// randPatTerm yields a pattern position: a variable or a constant.
func randPatTerm(rng *rand.Rand, vars []string, consts []string) string {
	if rng.Intn(2) == 0 {
		return "?" + vars[rng.Intn(len(vars))]
	}
	return consts[rng.Intn(len(consts))]
}

func randQuery(rng *rand.Rand) string {
	vars := []string{"a", "b", "c", "d"}
	subjConsts := []string{"<http://ex/s1>", "<http://ex/s5>", "<http://ex/s12>"}
	predConsts := []string{"a", "<http://ex/p0>", "<http://ex/p1>", "<http://ex/p2>", "<http://ex/geom>"}
	objConsts := []string{
		"<http://ex/Hotspot>", "<http://ex/Town>", "<http://ex/s3>",
		`"name-2"`, "4",
	}
	pattern := func() string {
		s := randPatTerm(rng, vars, subjConsts)
		p := predConsts[rng.Intn(len(predConsts))]
		if rng.Intn(5) == 0 {
			p = "?" + vars[rng.Intn(len(vars))]
		}
		o := randPatTerm(rng, vars, objConsts)
		return fmt.Sprintf("%s %s %s .", s, p, o)
	}
	var body []string
	nPats := 1 + rng.Intn(3)
	for i := 0; i < nPats; i++ {
		body = append(body, pattern())
	}
	// FILTER variants.
	switch rng.Intn(5) {
	case 0:
		body = append(body, fmt.Sprintf("FILTER(?%s > %d)", vars[rng.Intn(2)], rng.Intn(8)))
	case 1:
		body = append(body, fmt.Sprintf("FILTER(REGEX(?%s, \"name\"))", vars[rng.Intn(2)]))
	case 2:
		body = append(body, fmt.Sprintf(
			`FILTER(strdf:intersects(?%s, "POLYGON ((23 37, 24.5 37, 24.5 38.5, 23 38.5, 23 37))"^^strdf:WKT))`,
			vars[rng.Intn(2)]))
	case 3:
		body = append(body, fmt.Sprintf(
			`FILTER(strdf:distance(?%s, "POINT (23.5 37.5)"^^strdf:WKT) < %d)`,
			vars[rng.Intn(2)], 20000+rng.Intn(100000)))
	}
	// BIND sometimes.
	if rng.Intn(4) == 0 {
		body = append(body, fmt.Sprintf("BIND(?%s + 1 AS ?%s)", vars[rng.Intn(2)], vars[3]))
	}
	// OPTIONAL sometimes.
	if rng.Intn(3) == 0 {
		body = append(body, fmt.Sprintf("OPTIONAL { %s }", pattern()))
	}
	// UNION sometimes.
	if rng.Intn(3) == 0 {
		body = append(body, fmt.Sprintf("{ %s } UNION { %s }", pattern(), pattern()))
	}
	sel := "*"
	if rng.Intn(2) == 0 {
		n := 1 + rng.Intn(3)
		var ps []string
		for i := 0; i < n; i++ {
			ps = append(ps, "?"+vars[i])
		}
		sel = strings.Join(ps, " ")
	}
	distinct := ""
	if rng.Intn(3) == 0 {
		distinct = "DISTINCT "
	}
	suffix := ""
	if rng.Intn(3) == 0 {
		suffix = fmt.Sprintf(" ORDER BY ?%s", vars[rng.Intn(2)])
		if rng.Intn(2) == 0 {
			suffix += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(10))
		}
	}
	return fmt.Sprintf(`PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT %s%s WHERE { %s }%s`, distinct, sel, strings.Join(body, "\n"), suffix)
}

// orderedBindings renders bindings as canonical lines in RESULT ORDER
// (no sorting): the serial-vs-parallel suite demands bit-identical
// output, row order included.
func orderedBindings(res *Result) []string {
	out := make([]string, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		var keys []string
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteString("=")
			sb.WriteString(b[k].String())
			sb.WriteString("|")
		}
		out = append(out, sb.String())
	}
	return out
}

// canonBindings renders bindings as sorted canonical lines.
func canonBindings(res *Result) []string {
	out := make([]string, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		var keys []string
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteString("=")
			sb.WriteString(b[k].String())
			sb.WriteString("|")
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func TestExecutorEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	st := equivStore(rng)
	modes := []struct {
		name       string
		optimizer  bool
		pushdown   bool
		spatialIdx bool
	}{
		{"default", true, true, true},
		{"no-optimizer", false, true, true},
		{"no-pushdown", true, false, true}, // A1 ablation: pushdown off
		{"no-rtree", true, true, false},    // A1 ablation: index scan
	}
	const nQueries = 400
	for qi := 0; qi < nQueries; qi++ {
		query := randQuery(rng)
		for _, m := range modes {
			st.SetSpatialIndexEnabled(m.spatialIdx)
			legacy := New(st)
			legacy.DisableVectorized = true
			legacy.DisableOptimizer = !m.optimizer
			legacy.DisableSpatialPushdown = !m.pushdown
			vec := New(st)
			vec.DisableOptimizer = !m.optimizer
			vec.DisableSpatialPushdown = !m.pushdown

			lres, lerr := legacy.Query(query)
			vres, verr := vec.Query(query)
			if (lerr == nil) != (verr == nil) {
				t.Fatalf("mode %s query #%d error mismatch:\nlegacy=%v\nvec=%v\nquery:\n%s",
					m.name, qi, lerr, verr, query)
			}
			if lerr != nil {
				continue
			}
			lc, vc := canonBindings(lres), canonBindings(vres)
			if len(lc) != len(vc) {
				t.Fatalf("mode %s query #%d row count: legacy=%d vec=%d\nquery:\n%s",
					m.name, qi, len(lc), len(vc), query)
			}
			for i := range lc {
				if lc[i] != vc[i] {
					t.Fatalf("mode %s query #%d row %d differs:\nlegacy: %s\nvec:    %s\nquery:\n%s",
						m.name, qi, i, lc[i], vc[i], query)
				}
			}
		}
	}
	st.SetSpatialIndexEnabled(true)
}

// forceTinyMorsels drops the morsel thresholds to 1 so the parallel
// machinery engages even on the small equivalence fixtures, restoring
// them (and GOMAXPROCS, raised so extra workers can actually spawn) on
// cleanup.
func forceTinyMorsels(t *testing.T) {
	t.Helper()
	prevJoin, prevFilter := morselMinJoinRows, morselMinFilterRows
	morselMinJoinRows, morselMinFilterRows = 1, 1
	prevProcs := runtime.GOMAXPROCS(4)
	t.Cleanup(func() {
		morselMinJoinRows, morselMinFilterRows = prevJoin, prevFilter
		runtime.GOMAXPROCS(prevProcs)
	})
}

// TestSerialParallelEquivalence reruns the 400-query randomized corpus
// through the vectorized executor at morsel parallelism 1, 2, 4 and
// GOMAXPROCS and demands BIT-IDENTICAL results — same rows, same row
// order — at every level. Morsel thresholds are forced to 1 so every
// operator actually fans out.
func TestSerialParallelEquivalence(t *testing.T) {
	forceTinyMorsels(t)
	rng := rand.New(rand.NewSource(20260729))
	st := equivStore(rng)
	queries := make([]string, 400)
	for i := range queries {
		queries[i] = randQuery(rng)
	}
	levels := []int{2, 4, runtime.GOMAXPROCS(0)}
	serial := New(st)
	serial.MaxParallelism = 1
	for qi, query := range queries {
		sres, serr := serial.Query(query)
		var want []string
		if serr == nil {
			want = orderedBindings(sres)
		}
		for _, workers := range levels {
			par := New(st)
			par.MaxParallelism = workers
			pres, perr := par.Query(query)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("workers=%d query #%d error mismatch:\nserial=%v\nparallel=%v\nquery:\n%s",
					workers, qi, serr, perr, query)
			}
			if serr != nil {
				continue
			}
			got := orderedBindings(pres)
			if len(got) != len(want) {
				t.Fatalf("workers=%d query #%d row count: serial=%d parallel=%d\nquery:\n%s",
					workers, qi, len(want), len(got), query)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("workers=%d query #%d row %d differs (order matters):\nserial:   %s\nparallel: %s\nquery:\n%s",
						workers, qi, i, want[i], got[i], query)
				}
			}
		}
	}
}

// TestContextCancellationStopsEvaluation: a pre-cancelled context must
// surface as an error from BOTH executors (the legacy evaluator honours
// -legacy-eval timeouts too), not as an empty result.
func TestContextCancellationStopsEvaluation(t *testing.T) {
	st := equivStore(rand.New(rand.NewSource(99)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	query := `SELECT * WHERE { ?s ?p ?o . ?s <http://ex/p2> ?x }`
	for _, legacy := range []bool{false, true} {
		eng := New(st)
		eng.DisableVectorized = legacy
		if _, err := eng.QueryContext(ctx, query); !errors.Is(err, context.Canceled) {
			t.Fatalf("legacy=%v: want context.Canceled, got %v", legacy, err)
		}
	}
}

// TestExecutorEquivalenceAggregates covers GROUP BY / aggregate queries,
// which take the decode-then-aggregate path.
func TestExecutorEquivalenceAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	st := equivStore(rng)
	queries := []string{
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
		`SELECT ?t (COUNT(*) AS ?n) WHERE { ?s a ?t } GROUP BY ?t ORDER BY ?t`,
		`SELECT ?t (AVG(?v) AS ?m) (MAX(?v) AS ?hi) WHERE { ?s a ?t . ?s <http://ex/p0> ?v } GROUP BY ?t ORDER BY ?t`,
		`ASK { ?s a <http://ex/Town> }`,
		`ASK { ?s a <http://ex/Nothing> }`,
	}
	for _, query := range queries {
		legacy := New(st)
		legacy.DisableVectorized = true
		vec := New(st)
		lres := legacy.MustQuery(query)
		vres := vec.MustQuery(query)
		if lres.Bool != vres.Bool {
			t.Fatalf("ASK mismatch for %s: legacy=%v vec=%v", query, lres.Bool, vres.Bool)
		}
		lc, vc := canonBindings(lres), canonBindings(vres)
		if strings.Join(lc, "\n") != strings.Join(vc, "\n") {
			t.Fatalf("aggregate mismatch for %s:\nlegacy=%v\nvec=%v", query, lc, vc)
		}
	}
}

// TestExecutorEquivalenceUpdates runs a DELETE/INSERT WHERE through both
// executors on separate but identical stores.
func TestExecutorEquivalenceUpdates(t *testing.T) {
	mkStore := func() *strabon.Store {
		return equivStore(rand.New(rand.NewSource(7)))
	}
	update := `PREFIX ex: <http://ex/>
		DELETE { ?s a ex:Town } INSERT { ?s a ex:City } WHERE { ?s a ex:Town }`
	check := `SELECT ?s WHERE { ?s a <http://ex/City> } ORDER BY ?s`

	legacySt := mkStore()
	legacy := New(legacySt)
	legacy.DisableVectorized = true
	vecSt := mkStore()
	vec := New(vecSt)

	lu := legacy.MustQuery(update)
	vu := vec.MustQuery(update)
	if lu.Affected != vu.Affected {
		t.Fatalf("affected mismatch: legacy=%d vec=%d", lu.Affected, vu.Affected)
	}
	lc := canonBindings(legacy.MustQuery(check))
	vc := canonBindings(vec.MustQuery(check))
	if strings.Join(lc, "\n") != strings.Join(vc, "\n") {
		t.Fatalf("post-update state mismatch:\nlegacy=%v\nvec=%v", lc, vc)
	}
}
