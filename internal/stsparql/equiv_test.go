package stsparql

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/strabon"
	"repro/internal/stsparql/corpus"
)

// The old-vs-new equivalence suite: random BGP + FILTER + OPTIONAL +
// UNION + BIND queries over a seeded store must return identical sorted
// bindings from the legacy binding-at-a-time evaluator and the vectorized
// id-space executor, in every ablation mode.

// equivStore seeds a store with the shared corpus dataset; the query
// generator lives in internal/stsparql/corpus so the replication
// equivalence suite exercises the exact same workload.
func equivStore(rng *rand.Rand) *strabon.Store {
	st := strabon.NewStore()
	st.AddAll(corpus.Triples(rng))
	return st
}

func randQuery(rng *rand.Rand) string { return corpus.RandQuery(rng) }

// orderedBindings renders bindings as canonical lines in RESULT ORDER
// (no sorting): the serial-vs-parallel suite demands bit-identical
// output, row order included.
func orderedBindings(res *Result) []string {
	out := make([]string, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		var keys []string
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteString("=")
			sb.WriteString(b[k].String())
			sb.WriteString("|")
		}
		out = append(out, sb.String())
	}
	return out
}

// canonBindings renders bindings as sorted canonical lines.
func canonBindings(res *Result) []string {
	out := make([]string, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		var keys []string
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteString("=")
			sb.WriteString(b[k].String())
			sb.WriteString("|")
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func TestExecutorEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(corpus.Seed))
	st := equivStore(rng)
	modes := []struct {
		name       string
		optimizer  bool
		pushdown   bool
		spatialIdx bool
	}{
		{"default", true, true, true},
		{"no-optimizer", false, true, true},
		{"no-pushdown", true, false, true}, // A1 ablation: pushdown off
		{"no-rtree", true, true, false},    // A1 ablation: index scan
	}
	const nQueries = 400
	for qi := 0; qi < nQueries; qi++ {
		query := randQuery(rng)
		for _, m := range modes {
			st.SetSpatialIndexEnabled(m.spatialIdx)
			legacy := New(st)
			legacy.DisableVectorized = true
			legacy.DisableOptimizer = !m.optimizer
			legacy.DisableSpatialPushdown = !m.pushdown
			vec := New(st)
			vec.DisableOptimizer = !m.optimizer
			vec.DisableSpatialPushdown = !m.pushdown

			lres, lerr := legacy.Query(query)
			vres, verr := vec.Query(query)
			if (lerr == nil) != (verr == nil) {
				t.Fatalf("mode %s query #%d error mismatch:\nlegacy=%v\nvec=%v\nquery:\n%s",
					m.name, qi, lerr, verr, query)
			}
			if lerr != nil {
				continue
			}
			lc, vc := canonBindings(lres), canonBindings(vres)
			if len(lc) != len(vc) {
				t.Fatalf("mode %s query #%d row count: legacy=%d vec=%d\nquery:\n%s",
					m.name, qi, len(lc), len(vc), query)
			}
			for i := range lc {
				if lc[i] != vc[i] {
					t.Fatalf("mode %s query #%d row %d differs:\nlegacy: %s\nvec:    %s\nquery:\n%s",
						m.name, qi, i, lc[i], vc[i], query)
				}
			}
		}
	}
	st.SetSpatialIndexEnabled(true)
}

// forceTinyMorsels drops the morsel thresholds to 1 so the parallel
// machinery engages even on the small equivalence fixtures, restoring
// them (and GOMAXPROCS, raised so extra workers can actually spawn) on
// cleanup.
func forceTinyMorsels(t *testing.T) {
	t.Helper()
	prevJoin, prevFilter := morselMinJoinRows, morselMinFilterRows
	morselMinJoinRows, morselMinFilterRows = 1, 1
	prevProcs := runtime.GOMAXPROCS(4)
	t.Cleanup(func() {
		morselMinJoinRows, morselMinFilterRows = prevJoin, prevFilter
		runtime.GOMAXPROCS(prevProcs)
	})
}

// TestSerialParallelEquivalence reruns the 400-query randomized corpus
// through the vectorized executor at morsel parallelism 1, 2, 4 and
// GOMAXPROCS and demands BIT-IDENTICAL results — same rows, same row
// order — at every level. Morsel thresholds are forced to 1 so every
// operator actually fans out.
func TestSerialParallelEquivalence(t *testing.T) {
	forceTinyMorsels(t)
	rng := rand.New(rand.NewSource(corpus.Seed))
	st := equivStore(rng)
	queries := make([]string, 400)
	for i := range queries {
		queries[i] = randQuery(rng)
	}
	levels := []int{2, 4, runtime.GOMAXPROCS(0)}
	serial := New(st)
	serial.MaxParallelism = 1
	for qi, query := range queries {
		sres, serr := serial.Query(query)
		var want []string
		if serr == nil {
			want = orderedBindings(sres)
		}
		for _, workers := range levels {
			par := New(st)
			par.MaxParallelism = workers
			pres, perr := par.Query(query)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("workers=%d query #%d error mismatch:\nserial=%v\nparallel=%v\nquery:\n%s",
					workers, qi, serr, perr, query)
			}
			if serr != nil {
				continue
			}
			got := orderedBindings(pres)
			if len(got) != len(want) {
				t.Fatalf("workers=%d query #%d row count: serial=%d parallel=%d\nquery:\n%s",
					workers, qi, len(want), len(got), query)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("workers=%d query #%d row %d differs (order matters):\nserial:   %s\nparallel: %s\nquery:\n%s",
						workers, qi, i, want[i], got[i], query)
				}
			}
		}
	}
}

// TestContextCancellationStopsEvaluation: a pre-cancelled context must
// surface as an error from BOTH executors (the legacy evaluator honours
// -legacy-eval timeouts too), not as an empty result.
func TestContextCancellationStopsEvaluation(t *testing.T) {
	st := equivStore(rand.New(rand.NewSource(99)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	query := `SELECT * WHERE { ?s ?p ?o . ?s <http://ex/p2> ?x }`
	for _, legacy := range []bool{false, true} {
		eng := New(st)
		eng.DisableVectorized = legacy
		if _, err := eng.QueryContext(ctx, query); !errors.Is(err, context.Canceled) {
			t.Fatalf("legacy=%v: want context.Canceled, got %v", legacy, err)
		}
	}
}

// TestExecutorEquivalenceAggregates covers GROUP BY / aggregate queries,
// which take the decode-then-aggregate path.
func TestExecutorEquivalenceAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	st := equivStore(rng)
	queries := []string{
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
		`SELECT ?t (COUNT(*) AS ?n) WHERE { ?s a ?t } GROUP BY ?t ORDER BY ?t`,
		`SELECT ?t (AVG(?v) AS ?m) (MAX(?v) AS ?hi) WHERE { ?s a ?t . ?s <http://ex/p0> ?v } GROUP BY ?t ORDER BY ?t`,
		`ASK { ?s a <http://ex/Town> }`,
		`ASK { ?s a <http://ex/Nothing> }`,
	}
	for _, query := range queries {
		legacy := New(st)
		legacy.DisableVectorized = true
		vec := New(st)
		lres := legacy.MustQuery(query)
		vres := vec.MustQuery(query)
		if lres.Bool != vres.Bool {
			t.Fatalf("ASK mismatch for %s: legacy=%v vec=%v", query, lres.Bool, vres.Bool)
		}
		lc, vc := canonBindings(lres), canonBindings(vres)
		if strings.Join(lc, "\n") != strings.Join(vc, "\n") {
			t.Fatalf("aggregate mismatch for %s:\nlegacy=%v\nvec=%v", query, lc, vc)
		}
	}
}

// TestExecutorEquivalenceUpdates runs a DELETE/INSERT WHERE through both
// executors on separate but identical stores.
func TestExecutorEquivalenceUpdates(t *testing.T) {
	mkStore := func() *strabon.Store {
		return equivStore(rand.New(rand.NewSource(7)))
	}
	update := `PREFIX ex: <http://ex/>
		DELETE { ?s a ex:Town } INSERT { ?s a ex:City } WHERE { ?s a ex:Town }`
	check := `SELECT ?s WHERE { ?s a <http://ex/City> } ORDER BY ?s`

	legacySt := mkStore()
	legacy := New(legacySt)
	legacy.DisableVectorized = true
	vecSt := mkStore()
	vec := New(vecSt)

	lu := legacy.MustQuery(update)
	vu := vec.MustQuery(update)
	if lu.Affected != vu.Affected {
		t.Fatalf("affected mismatch: legacy=%d vec=%d", lu.Affected, vu.Affected)
	}
	lc := canonBindings(legacy.MustQuery(check))
	vc := canonBindings(vec.MustQuery(check))
	if strings.Join(lc, "\n") != strings.Join(vc, "\n") {
		t.Fatalf("post-update state mismatch:\nlegacy=%v\nvec=%v", lc, vc)
	}
}
