// Package fsx holds the small filesystem primitives the persistence
// layer is built on: crash-safe atomic file replacement and directory
// fsync. They are separated out so both the legacy strabon.Store.Save
// path and the internal/persist durability engine share one audited
// implementation of the write-temp / fsync / rename dance.
package fsx

import (
	"bufio"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faults"
)

// WriteFileAtomic replaces path with the bytes produced by write, such
// that a crash at any point leaves either the old file or the new file —
// never a torn mixture. The sequence is the standard one: write to
// path+".tmp" in the same directory, flush and fsync the temp file,
// rename over the target, then fsync the directory so the rename itself
// is durable. On error the temp file is removed and the old file is
// untouched.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	keepTmp := false
	defer func() {
		if err != nil {
			f.Close() //lint:allow errdropcheck(cleanup after a failure already being returned; the close error would mask the root cause)
			if !keepTmp {
				os.Remove(tmp)
			}
		}
	}()
	if err = faults.Eval("fsx/write"); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = faults.Eval("fsx/rename"); err != nil {
		// A failure here models a crash between the temp fsync and the
		// rename: the stray .tmp a real crash would leave stays behind.
		keepTmp = true
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so that renames and creates inside it
// survive power loss.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
