package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	for _, content := range []string{"first", "second longer content"} {
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("read %q, want %q", got, content)
		}
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after successful write")
	}
}

// TestWriteFileAtomicFailureKeepsOld is the crash-injection regression
// test: a writer that dies mid-stream must leave the previous file
// byte-identical and no temp debris.
func TestWriteFileAtomicFailureKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "precious original")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash mid-write")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half of the new cont") // partial write, then death
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	got, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(got) != "precious original" {
		t.Fatalf("previous content destroyed: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after failed write")
	}
}
