package endpoint

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/persist"
	"repro/internal/stsparql"
)

// BenchmarkIngestEndpoint drives the streaming /ingest path end to end:
// HTTP POST, line decode, triple parse, chunked AddAll commits. The
// "durable" variant backs the store with the WAL in SyncAlways mode, so
// each chunk rides the group-commit pipeline; "memory" isolates the
// decode/parse/index cost. Reported triples/sec is the headline number
// for live-feed capacity planning (docs/performance.md).
func BenchmarkIngestEndpoint(b *testing.B) {
	const perPost = 2000
	for _, variant := range []string{"memory", "durable"} {
		b.Run(variant, func(b *testing.B) {
			cfg := Config{IngestMaxChunk: 512}
			if variant == "durable" {
				m, st, err := persist.Open(persist.Options{
					Dir: b.TempDir(), SyncMode: persist.SyncAlways, NoCheckpointOnClose: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				cfg.Store = st
				cfg.Engine = stsparql.New(st)
			} else {
				st, eng := fixture()
				cfg.Store = st
				cfg.Engine = eng
			}
			srv, err := NewServer(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			bodies := make([]string, b.N)
			var bytesPerPost int
			for i := range bodies {
				bodies[i] = ntLinesNoHeader(perPost, fmt.Sprintf("b%d", i))
				bytesPerPost = len(bodies[i])
			}
			b.SetBytes(int64(bytesPerPost))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(ts.URL+"/ingest", "application/n-triples", strings.NewReader(bodies[i]))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("ingest status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(perPost)*float64(b.N)/b.Elapsed().Seconds(), "triples/sec")
		})
	}
}
