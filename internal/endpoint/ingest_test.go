package endpoint

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/replication"
)

// The streaming bulk-ingest front door: chunked N-Triples in, pipelined
// AddAll batches out, with the SPARQL update path excluded and reads
// concurrent. Failpoint tests for the stream live here too (process-
// global failpoints — no t.Parallel).

type ingestResponse struct {
	Received int `json:"received"`
	Added    int `json:"added"`
	Batches  int `json:"batches"`
}

func postIngest(t *testing.T, base, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/ingest", "application/n-triples", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

func ntLines(n int, tag string) string {
	var sb strings.Builder
	sb.WriteString("# synthetic observation feed\n\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<http://example.org/obs/%s-%d> <http://teleios.di.uoa.gr/noa#hasGeometry> "+
			"\"POINT (%d.5 37.9)\"^^<http://strdf.di.uoa.gr/ontology#WKT> .\n", tag, i, i%179)
	}
	return sb.String()
}

func TestIngestStreamsAndCommitsInChunks(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.IngestMaxChunk = 16 })
	before := srv.cfg.Store.Len()
	resp, body := postIngest(t, ts.URL, ntLines(50, "a"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("response %q: %v", body, err)
	}
	if ir.Received != 50 || ir.Added != 50 {
		t.Fatalf("received/added = %d/%d, want 50/50", ir.Received, ir.Added)
	}
	// 50 triples at 16 per chunk = 4 batches (16+16+16+2).
	if ir.Batches != 4 {
		t.Fatalf("batches = %d, want 4", ir.Batches)
	}
	if got := srv.cfg.Store.Len() - before; got != 50 {
		t.Fatalf("store grew by %d, want 50", got)
	}
	if resp.Header.Get(replication.HeaderAppliedSeq) == "" {
		t.Fatal("missing applied-seq watermark header")
	}

	// Idempotent re-send: everything deduplicated, nothing lost.
	resp, body = postIngest(t, ts.URL, ntLines(50, "a"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-ingest status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Received != 50 || ir.Added != 0 {
		t.Fatalf("re-send received/added = %d/%d, want 50/0", ir.Received, ir.Added)
	}
}

func TestIngestRejectsMalformedLineWithPosition(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	before := srv.cfg.Store.Len()
	resp, body := postIngest(t, ts.URL, "<http://example.org/a> <http://example.org/p> <http://example.org/b> .\nnot a triple\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "line 2") {
		t.Fatalf("error does not name the offending line: %s", body)
	}
	// The valid line before the error was in the aborted chunk — with the
	// default chunk size nothing was committed, and the error says so.
	if !strings.Contains(string(body), "0 committed chunks") {
		t.Fatalf("error does not report committed progress: %s", body)
	}
	if srv.cfg.Store.Len() != before {
		t.Fatalf("store grew by %d on an aborted single-chunk stream", srv.cfg.Store.Len()-before)
	}
}

func TestIngestMethodAndModeGates(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.ReadOnly = true; c.ReadOnlyMessage = "replica; go to the primary" })
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest status %d, want 405", resp.StatusCode)
	}
	resp, body := postIngest(t, ts.URL, ntLines(1, "ro"))
	if resp.StatusCode != http.StatusForbidden || !strings.Contains(string(body), "primary") {
		t.Fatalf("read-only ingest: status %d body %s, want 403 naming the primary", resp.StatusCode, body)
	}
}

func TestIngestDegradedModeRefusedUpFront(t *testing.T) {
	broken := fmt.Errorf("wal latched broken")
	_, ts := newTestServer(t, func(c *Config) { c.DegradedCheck = func() error { return broken } })
	resp, body := postIngest(t, ts.URL, ntLines(3, "deg"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "degraded read-only mode") {
		t.Fatalf("503 body does not explain the degradation: %s", body)
	}
}

// TestIngestJournalVetoAbortsStream: a WAL veto mid-stream must fail
// the request (nothing in the vetoed chunk is durable) while reporting
// the progress that IS durable — and the pipeline's decoder goroutine
// must shut down with the handler (the package leakcheck enforces it).
func TestIngestJournalVetoAbortsStream(t *testing.T) {
	j := &vetoJournal{}
	srv, ts := newTestServer(t, func(c *Config) { c.IngestMaxChunk = 8 })
	srv.cfg.Store.SetJournal(j)
	defer srv.cfg.Store.SetJournal(nil)

	resp, body := postIngest(t, ts.URL, ntLines(8, "ok"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest status %d: %s", resp.StatusCode, body)
	}
	j.fail = true
	resp, body = postIngest(t, ts.URL, ntLines(24, "veto"))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("vetoed ingest status %d, want 500: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "write-ahead journal") {
		t.Fatalf("500 body does not name the journal: %s", body)
	}
	j.fail = false
	if resp, body = postIngest(t, ts.URL, ntLines(8, "after")); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after journal recovery: status %d: %s", resp.StatusCode, body)
	}
}

// TestIngestReadFaultFailsThatStreamOnly: the endpoint/ingest-read
// failpoint (matrix: docs/operations.md) — the stream fails mid-flight
// with a clear error naming the committed progress; the server and the
// next stream are unaffected.
func TestIngestReadFaultFailsThatStreamOnly(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.IngestMaxChunk = 4 })
	before := srv.cfg.Store.Len()
	// Fail on the 10th line: chunks of 4 → two chunks (8 triples) commit,
	// the ninth triple is in the aborted chunk.
	armEndpointFaults(t, "endpoint/ingest-read=9*off->1*error(connection reset)->off")
	resp, body := postIngest(t, ts.URL, ntLinesNoHeader(16, "fault"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "2 committed chunks") {
		t.Fatalf("error does not report the committed prefix: %s", body)
	}
	if got := srv.cfg.Store.Len() - before; got != 8 {
		t.Fatalf("store grew by %d, want the 8 committed triples", got)
	}
	resp, body = postIngest(t, ts.URL, ntLinesNoHeader(16, "fault"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-send after fault: status %d: %s", resp.StatusCode, body)
	}
}

// ntLinesNoHeader emits exactly n statement lines (no comment/blank
// prologue), for tests that count failpoint evaluations per line.
func ntLinesNoHeader(n int, tag string) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<http://example.org/obs/%s-%d> <http://teleios.di.uoa.gr/noa#observedAt> "+
			"\"2007-08-25T12:%02d:00\" .\n", tag, i, i%60)
	}
	return sb.String()
}

// TestIngestConcurrentWithQueriesAndUpdates: ingest streams, SPARQL
// updates and reads all in flight at once — the lock contract (ingest
// shares the read side, updates the write side) must hold up under
// load without torn statements or lost writes.
func TestIngestConcurrentWithQueriesAndUpdates(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.IngestMaxChunk = 8 })
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/ingest", "application/n-triples",
				strings.NewReader(ntLines(64, fmt.Sprintf("conc%d", g))))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("ingest %d: status %d", g, resp.StatusCode)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			up := fmt.Sprintf(`INSERT DATA { <http://example.org/up/%d> a <http://example.org/Town> }`, i)
			resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {up}})
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("update %d: status %d", i, resp.StatusCode)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape("SELECT ?s WHERE { ?s a <http://example.org/Town> }"))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()
	// 3×64 ingested triples + 10 update towns, all present.
	n := srv.cfg.Store.Len()
	if want := lenAfterFixture(srv) + 3*64 + 10; n != want {
		t.Fatalf("store has %d triples, want %d", n, want)
	}
}

// lenAfterFixture recomputes the fixture's triple count so the
// concurrency test does not hard-code it.
func lenAfterFixture(s *Server) int {
	st, _ := fixture()
	_ = s
	return st.Len()
}
