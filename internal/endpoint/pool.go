package endpoint

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Pool errors.
var (
	// ErrOverloaded is returned by Submit when the job queue is full.
	ErrOverloaded = errors.New("endpoint: worker pool overloaded")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("endpoint: worker pool closed")
)

// job is one unit of queued work.
type job struct {
	fn   func()
	done chan struct{}
	// abandoned is set when the submitter stopped waiting (deadline); the
	// worker then skips the job instead of burning a slot on a result
	// nobody will read.
	abandoned atomic.Bool
}

// Pool is a bounded worker pool: a fixed number of goroutines draining a
// bounded job queue. It exists so that a burst of HTTP queries degrades
// into fast 503s instead of unbounded goroutines all contending on the
// store's lock.
type Pool struct {
	jobs    chan *job
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	workers int

	// counters for /stats.
	submitted atomic.Uint64
	rejected  atomic.Uint64
	timedOut  atomic.Uint64
	panicked  atomic.Uint64
}

// NewPool starts workers goroutines over a queue of depth queueDepth.
// Workers and depth are clamped to at least 1 worker and a non-negative
// queue (depth 0 means a request is rejected unless a worker is free to
// take it immediately via the unbuffered channel handoff).
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &Pool{jobs: make(chan *job, queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.runJob(j)
	}
}

// runJob executes one job. done is closed via defer so a panic escaping
// fn can never wedge the submitter, and the recover backstop keeps a
// panicking job from killing the worker (and with it the process —
// pool goroutines are outside net/http's per-handler recovery).
// Callers that need the panic value should recover inside fn; this
// backstop only counts what slipped through.
func (p *Pool) runJob(j *job) {
	defer close(j.done)
	if j.abandoned.Load() {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			p.panicked.Add(1)
		}
	}()
	j.fn()
}

// Submit enqueues fn and waits for it to finish or for ctx to expire.
// A full queue returns ErrOverloaded immediately; an expired context
// returns ctx.Err() and the job is abandoned (skipped if still queued;
// left to finish in the background if already running — the stSPARQL
// evaluator is not preemptible).
func (p *Pool) Submit(ctx context.Context, fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	j := &job{fn: fn, done: make(chan struct{})}
	select {
	case p.jobs <- j:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		p.rejected.Add(1)
		return ErrOverloaded
	}
	p.submitted.Add(1)
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		j.abandoned.Store(true)
		p.timedOut.Add(1)
		return ctx.Err()
	}
}

// Close stops accepting jobs, lets queued jobs drain, and waits for the
// workers to exit. It is safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// PoolStats is a snapshot of pool counters.
type PoolStats struct {
	Workers   int    `json:"workers"`
	QueueCap  int    `json:"queue_capacity"`
	Queued    int    `json:"queued"`
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	TimedOut  uint64 `json:"timed_out"`
	Panicked  uint64 `json:"panicked"`
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		QueueCap:  cap(p.jobs),
		Queued:    len(p.jobs),
		Submitted: p.submitted.Load(),
		Rejected:  p.rejected.Load(),
		TimedOut:  p.timedOut.Load(),
		Panicked:  p.panicked.Load(),
	}
}
