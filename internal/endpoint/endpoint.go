// Package endpoint exposes a Strabon store over HTTP as an stSPARQL
// query endpoint, following the SPARQL 1.1 Protocol: queries arrive via
// GET /sparql?query=... or POST /sparql (form-encoded or raw
// application/sparql-query body) and results are serialised according to
// content negotiation — SPARQL Results JSON, CSV, TSV, GeoJSON feature
// collections for rows carrying stRDF geometries, and N-Triples for
// CONSTRUCT graphs.
//
// The server is built for concurrent load in front of a single store: a
// bounded worker pool caps how many evaluations contend on the store's
// lock at once (excess requests get fast 503s instead of queueing
// without bound), every query runs under a deadline, and an LRU cache
// keyed on (query text, store version) serves repeated read queries
// without re-evaluation. UPDATE statements (INSERT/DELETE) are accepted
// over POST only and can be disabled wholesale with Config.ReadOnly.
//
// Beyond /sparql the handler serves /health (liveness plus triple count)
// and /stats (store, cache, and pool counters) for operations.
package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/replication"
	"repro/internal/strabon"
	"repro/internal/strdf"
	"repro/internal/stsparql"
)

// QueryEngine evaluates one parsed stSPARQL statement under the
// request's context (carrying the per-query deadline, so a timed-out or
// disconnected request stops the evaluation instead of orphaning it).
// *stsparql.Engine implements it; tests substitute slow or failing
// engines. The handler parses before dispatching (for 400s, update
// gating, and serialisation), so the engine receives the already-parsed
// query and never re-parses.
type QueryEngine interface {
	EvalContext(ctx context.Context, q *stsparql.Query) (*stsparql.Result, error)
}

// errEvalPanic wraps a panic recovered from the evaluator so the
// handler can map it to a 500.
var errEvalPanic = errors.New("endpoint: evaluation panicked")

// errJournalVeto marks an update some part of which the store's
// write-ahead journal refused to log (disk full, I/O error): the
// refused mutations were not applied and, critically, were not made
// durable, so the client must not receive a success.
var errJournalVeto = errors.New("endpoint: update rejected by the write-ahead journal")

// Config parameterises a Server. The zero value of each field selects a
// sensible default (see the field comments).
//
// The server must be the store's only writer: update atomicity and
// cache consistency are enforced at this layer (updates are serialised
// against each other and against reads here, not in the engine), so
// mutating the store out of band — a second Server over the same
// Store, or direct Store.Add/Engine.Eval update calls while the server
// runs — can interleave with in-flight statements and produce torn
// reads the engine's per-triple locking cannot prevent.
type Config struct {
	// Engine evaluates queries. Required.
	Engine QueryEngine
	// Store, when set, supplies the version counter that keys the result
	// cache and the statistics for /health and /stats. Without it the
	// cache is disabled (results could go stale invisibly).
	Store *strabon.Store
	// MaxConcurrency bounds simultaneously evaluating queries
	// (default 8).
	MaxConcurrency int
	// QueueDepth bounds queries waiting for a worker (default
	// 4*MaxConcurrency; negative selects an unbuffered handoff, where a
	// request is rejected unless a worker is immediately free). A full
	// queue produces 503s.
	QueueDepth int
	// QueryTimeout bounds one evaluation, queue wait included
	// (default 30s). Expiry produces a 503 with Retry-After.
	QueryTimeout time.Duration
	// CacheSize is the LRU result-cache capacity in entries
	// (default 128; 0 keeps the default, negative disables).
	CacheSize int
	// MaxCacheableRows bounds the size of an individual cached result
	// (bindings or triples); larger results are served but not cached,
	// so a few huge SELECTs cannot pin unbounded memory (default 10000).
	MaxCacheableRows int
	// ReadOnly rejects UPDATE statements with 403.
	ReadOnly bool
	// ReadOnlyMessage customises the 403 body (default "endpoint is
	// read-only"). Replica mode sets it to point clients at the primary.
	ReadOnlyMessage string
	// MaxQueryBytes bounds the request query text (default 1 MiB).
	MaxQueryBytes int64
	// RateLimit caps each client's request rate in requests/second,
	// keyed on the Teleios-Tenant header (or remote IP). 0 disables
	// rate limiting. Excess requests get 429 with a Retry-After hint.
	RateLimit float64
	// RateBurst is the per-client burst allowance (default 2*RateLimit,
	// minimum 1).
	RateBurst int
	// MaxClients bounds how many per-client rate-limit buckets are kept
	// (LRU-evicted beyond it, default 4096), so a spoofed tenant space
	// cannot grow memory without bound.
	MaxClients int
	// ShedWatermark is the fraction of QueueDepth at which admission
	// control starts shedding queries before the pool saturates (0 or
	// out of range selects 1.0: shed only when the queue is full).
	ShedWatermark float64
	// DegradedCheck, when set, is consulted before every update: a
	// non-nil error puts the endpoint in degraded read-only mode —
	// reads keep serving, updates get a clear 503 naming the cause.
	// teleios-server wires it to persist.Manager.Broken (the latched
	// can't-write-until-restart state).
	DegradedCheck func() error
	// DurabilityStats, when set, supplies write-ahead-log and checkpoint
	// telemetry for /stats (wired to persist.Manager.Stats by
	// teleios-server; nil when the server runs without a data dir).
	DurabilityStats func() DurabilityStats
	// ReplicationStats, when set, supplies a role-specific replication
	// telemetry block for /stats (a replication.PrimaryStats or
	// replication.ReplicaStats, wired by teleios-server; nil when the
	// node neither ships nor tails a WAL).
	ReplicationStats func() any
	// IngestMaxChunk bounds how many triples one /ingest AddAll batch
	// (= one journal record) carries (default 8192). Smaller chunks
	// lower per-chunk latency and memory; larger ones amortise more
	// lock/journal overhead per commit.
	IngestMaxChunk int
}

// DurabilityStats is the persistence telemetry block exposed at /stats.
type DurabilityStats struct {
	Enabled              bool   `json:"enabled"`
	WALBytes             int64  `json:"wal_bytes"`
	WALSegments          int    `json:"wal_segments"`
	WALSeq               uint64 `json:"wal_seq"`
	Snapshots            int    `json:"snapshots"`
	LastCheckpointSeq    uint64 `json:"last_checkpoint_seq"`
	LastCheckpointUnixMs int64  `json:"last_checkpoint_unix_ms,omitempty"`
	LastCheckpointMs     int64  `json:"last_checkpoint_ms,omitempty"`
	RecoveryMs           int64  `json:"recovery_ms"`
	ReplayedRecords      uint64 `json:"replayed_records"`
	JournalError         string `json:"journal_error,omitempty"`

	// Snapshot-format telemetry (PR 7): what checkpoints write, how big
	// the newest snapshot is on disk, whether the store is serving in
	// place off an mmap-ed packed snapshot ("mapped") or from heap
	// structures ("heap"), and the estimated resident heap bytes of its
	// primary state (for a mapped store: just the decoded-block caches).
	SnapshotFormat string `json:"snapshot_format,omitempty"`
	SnapshotBytes  int64  `json:"snapshot_bytes,omitempty"`
	StoreMode      string `json:"store_mode,omitempty"`
	ResidentBytes  int64  `json:"resident_bytes,omitempty"`

	// Group-commit telemetry (PR 10): flushed batches, journalled
	// records, physical fsyncs, the fsyncs the batching avoided versus
	// one-fsync-per-record (-wal-sync always only), the mean time a
	// record's commit ticket waited for its batch to become durable,
	// and the records-per-batch histogram (bucket i counts batches of
	// 2^i..2^(i+1)-1 records; the last is open-ended).
	GroupBatches   uint64   `json:"group_batches,omitempty"`
	GroupRecords   uint64   `json:"group_records,omitempty"`
	GroupFsyncs    uint64   `json:"group_fsyncs,omitempty"`
	FsyncsSaved    uint64   `json:"fsyncs_saved,omitempty"`
	TicketWaitUs   int64    `json:"ticket_wait_mean_us,omitempty"`
	GroupBatchHist []uint64 `json:"group_batch_hist,omitempty"`
	GroupWindowMs  int64    `json:"group_window_ms,omitempty"`
}

// Server is the stSPARQL protocol endpoint.
type Server struct {
	cfg   Config
	pool  *Pool
	cache *ResultCache
	adm   *admission
	// updateMu gives UPDATE statements statement-level atomicity: the
	// engine applies a modify's deletions and insertions triple-by-triple
	// under separate store-lock acquisitions, so without exclusion here
	// two updates would interleave (lost updates, duplicate rows) and a
	// concurrent read could observe a torn half-applied state. Updates
	// take the write lock; reads take the read lock and so still run
	// concurrently with each other.
	updateMu sync.RWMutex
}

// NewServer validates cfg, applies defaults, and returns a Server whose
// worker pool is running. Callers must Close it when done.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("endpoint: Config.Engine is required")
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 8
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4 * cfg.MaxConcurrency
	}
	// Negative passes through; NewPool clamps it to a depth-0 handoff.
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 30 * time.Second
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.Store == nil {
		// No version source: caching would serve stale results forever.
		cfg.CacheSize = -1
	}
	if cfg.MaxQueryBytes <= 0 {
		cfg.MaxQueryBytes = 1 << 20
	}
	if cfg.MaxCacheableRows <= 0 {
		cfg.MaxCacheableRows = 10000
	}
	return &Server{
		cfg:   cfg,
		pool:  NewPool(cfg.MaxConcurrency, cfg.QueueDepth),
		cache: NewResultCache(cfg.CacheSize),
		adm:   newAdmission(cfg),
	}, nil
}

// degradedErr reports why the server is in degraded read-only mode,
// nil when it is not. A transient journal veto fails only its own
// update (500); this hook reports the *latched* failures — a broken
// WAL, an unwritable data dir — where every write is doomed until
// restart, so refusing them up front with a clear 503 beats limping.
func (s *Server) degradedErr() error {
	if s.cfg.DegradedCheck == nil {
		return nil
	}
	return s.cfg.DegradedCheck()
}

// setRetryAfter stamps the computed overload hint on a 503.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfter(s.pool.Stats())))
}

// Close drains the worker pool. In-flight queries finish; new requests
// fail with 503.
func (s *Server) Close() { s.pool.Close() }

// Handler returns the endpoint's HTTP handler: /sparql, /health,
// /stats. Each extra callback may mount additional routes on the same
// mux (teleios-server uses this for the /replication/v1/ handlers, so
// WAL shipping needs no second listener or process).
func (s *Server) Handler(extra ...func(*http.ServeMux)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.handleSparql)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/", s.handleIndex)
	for _, fn := range extra {
		fn(mux)
	}
	return mux
}

// extractQuery pulls the statement text out of a protocol request:
// ?query= on GET; form fields query=/update= or a raw
// application/sparql-query / application/sparql-update body on POST.
func (s *Server) extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", errors.New("missing required 'query' parameter")
		}
		if int64(len(q)) > s.cfg.MaxQueryBytes {
			return "", fmt.Errorf("query exceeds the %d-byte limit", s.cfg.MaxQueryBytes)
		}
		return q, nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		ct = strings.TrimSpace(strings.ToLower(ct))
		r.Body = http.MaxBytesReader(nil, r.Body, s.cfg.MaxQueryBytes)
		switch ct {
		case "application/sparql-query", "application/sparql-update":
			body, err := io.ReadAll(r.Body)
			if err != nil {
				return "", fmt.Errorf("reading body: %w", err)
			}
			if len(body) == 0 {
				return "", errors.New("empty request body")
			}
			return string(body), nil
		default:
			// Form-encoded (the default for curl --data-urlencode).
			if err := r.ParseForm(); err != nil {
				return "", fmt.Errorf("parsing form: %w", err)
			}
			if q := r.PostForm.Get("query"); q != "" {
				return q, nil
			}
			if q := r.PostForm.Get("update"); q != "" {
				return q, nil
			}
			return "", errors.New("missing 'query' or 'update' form field")
		}
	default:
		return "", errors.New("method not allowed")
	}
}

func isUpdateForm(form stsparql.QueryForm) bool {
	switch form {
	case stsparql.FormInsertData, stsparql.FormDeleteData, stsparql.FormModify:
		return true
	}
	return false
}

func (s *Server) handleSparql(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
		return
	}
	if ok, retry := s.adm.admitClient(r); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, "rate limit exceeded for this client; slow down", http.StatusTooManyRequests)
		return
	}
	src, err := s.extractQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Parse up front: malformed queries 400 without occupying a worker,
	// and the form drives update gating plus result serialisation.
	parsed, err := stsparql.ParseQuery(src)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	update := isUpdateForm(parsed.Form)
	// An EXPLAIN result is a binding table (?plan rows) no matter which
	// read form was explained, so negotiation and serialisation treat it
	// as SELECT — otherwise EXPLAIN ASK would render a bare boolean and
	// EXPLAIN CONSTRUCT an empty graph.
	serForm := parsed.Form
	if parsed.Explain {
		serForm = stsparql.FormSelect
	}
	var format Format
	if update {
		if s.cfg.ReadOnly {
			msg := s.cfg.ReadOnlyMessage
			if msg == "" {
				msg = "endpoint is read-only"
			}
			http.Error(w, msg, http.StatusForbidden)
			return
		}
		if r.Method == http.MethodGet {
			// The protocol forbids updates via GET (they mutate state).
			w.Header().Set("Allow", "POST")
			http.Error(w, "updates require POST", http.StatusMethodNotAllowed)
			return
		}
		if jerr := s.degradedErr(); jerr != nil {
			// The write-ahead journal has latched a failure (disk full,
			// I/O error, unwritable data dir): the store can no longer
			// make writes durable. Degrade honestly — keep serving
			// reads, refuse writes with a clear 503 — instead of
			// accepting updates that would be lost on restart.
			s.adm.degradedDenials.Add(1)
			w.Header().Set("Retry-After", "60")
			http.Error(w, fmt.Sprintf(
				"endpoint is in degraded read-only mode: the write-ahead journal failed (%v); "+
					"reads continue to be served, writes are refused until the data directory recovers and the server restarts", jerr),
				http.StatusServiceUnavailable)
			return
		}
		// Update responses are always JSON; Accept does not apply.
	} else {
		var negErr *negotiationError
		format, negErr = negotiateFormat(r.URL.Query().Get("format"), r.Header.Get("Accept"), serForm)
		if negErr != nil {
			http.Error(w, negErr.message, negErr.status)
			return
		}
	}

	cv := s.storeVersion()
	if !update {
		// Read-your-writes backstop: a client holding an applied-seq
		// watermark (from an earlier update's Teleios-Applied-Seq) may
		// demand this read reflect it. The router normally steers such
		// reads to a caught-up backend; this check catches direct hits
		// on a lagging replica — better a retryable 503 than a silent
		// stale read.
		if mv := r.Header.Get(replication.HeaderMinVersion); mv != "" && s.cfg.Store != nil {
			min, perr := strconv.ParseUint(mv, 10, 64)
			if perr != nil {
				http.Error(w, "bad "+replication.HeaderMinVersion+" header", http.StatusBadRequest)
				return
			}
			if cv.AppliedSeq < min {
				w.Header().Set("Retry-After", "1")
				w.Header().Set(replication.HeaderAppliedSeq, strconv.FormatUint(cv.AppliedSeq, 10))
				http.Error(w, fmt.Sprintf("store is at applied seq %d, below the requested %d", cv.AppliedSeq, min),
					http.StatusServiceUnavailable)
				return
			}
		}
		// The store fingerprint makes a strong validator: identical
		// (query, version, applied-seq, format) means byte-identical
		// output, so a matching If-None-Match skips evaluation entirely.
		if s.cfg.Store != nil {
			etag := readETag(src, cv, format)
			w.Header().Set("ETag", etag)
			if inmMatches(r.Header.Get("If-None-Match"), etag) {
				w.Header().Set(replication.HeaderAppliedSeq, strconv.FormatUint(cv.AppliedSeq, 10))
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}

	res, err := s.evaluate(r.Context(), src, parsed, update)
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed):
		s.setRetryAfter(w)
		http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		return
	case errors.Is(err, errEvalPanic):
		http.Error(w, "internal error evaluating the query", http.StatusInternalServerError)
		return
	case errors.Is(err, errJournalVeto):
		// The WAL refused to log some of the update's mutations: they
		// were neither applied nor made durable (earlier parts of a
		// DELETE/INSERT may have been). Success would be a lie.
		http.Error(w, "update could not be journalled to the write-ahead log and was not (fully) applied; see /stats",
			http.StatusInternalServerError)
		return
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		if update {
			// The evaluator is not preemptible: a timed-out update may
			// still be applied by the worker after this response. Don't
			// invite a blind retry of a non-idempotent statement with
			// Retry-After — report the ambiguity instead.
			http.Error(w, "update timed out; it may or may not have been applied — verify before retrying",
				http.StatusInternalServerError)
			return
		}
		s.setRetryAfter(w)
		http.Error(w, "query timed out", http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	if update {
		// The watermark re-read AFTER the update is the client's
		// read-your-writes token: echo it back in a later read's
		// Teleios-Min-Version and any backend serving that read is
		// guaranteed to reflect this write.
		if s.cfg.Store != nil {
			w.Header().Set(replication.HeaderAppliedSeq, strconv.FormatUint(s.cfg.Store.AppliedSeq(), 10))
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"affected\":%d}\n", res.Affected)
		return
	}
	if s.cfg.Store != nil {
		w.Header().Set(replication.HeaderAppliedSeq, strconv.FormatUint(cv.AppliedSeq, 10))
	}
	w.Header().Set("Content-Type", format.ContentType())
	if err := writeResult(w, res, serForm, format, s.resolveGeom); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// resolveGeom decodes a spatial literal through the store's ingest-time
// geometry cache when possible (already parsed and WGS84-normalised),
// parsing directly only for literals the store has never seen (e.g.
// values computed by strdf:buffer in a projection). The cache entry is
// only trusted when it really is WGS84: ingest keeps the original
// coordinates when a literal's CRS cannot be reprojected, and GeoJSON
// must render such rows with a null geometry, not mislabeled planar
// coordinates.
func (s *Server) resolveGeom(t rdf.Term) (strdf.SpatialValue, error) {
	if s.cfg.Store != nil {
		if id, err := s.cfg.Store.LookupID(t); err == nil {
			if sv, ok := s.cfg.Store.Geometry(id); ok &&
				(sv.SRID == geo.SRIDWGS84 || sv.SRID == geo.SRIDCRS84) {
				return sv, nil
			}
		}
	}
	return parseGeomDirect(t)
}

// evaluate runs one statement through the cache and worker pool under
// the configured deadline. src is the raw query text (the cache key);
// parsed is its parse, handed to the engine so it is not re-parsed.
func (s *Server) evaluate(ctx context.Context, src string, parsed *stsparql.Query, update bool) (*stsparql.Result, error) {
	version := s.storeVersion()
	if !update {
		if res, ok := s.cache.Get(src, version); ok {
			return res, nil
		}
	}
	// Shed before submitting: past the watermark the queue is long
	// enough that this request would mostly wait, so a fast 503 with an
	// honest Retry-After serves the client better than a slow timeout.
	if s.adm.shouldShed(s.pool.Stats()) {
		s.adm.shed.Add(1)
		return nil, ErrOverloaded
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.QueryTimeout)
	defer cancel()
	var (
		res     *stsparql.Result
		evalErr error
	)
	if err := s.pool.Submit(ctx, func() {
		// A panic in the evaluator must fail this one request with a
		// 500, not take down the process (pool workers are outside
		// net/http's per-handler recovery).
		defer func() {
			if r := recover(); r != nil {
				evalErr = fmt.Errorf("%w: %v", errEvalPanic, r)
			}
		}()
		if update {
			s.updateMu.Lock()
			defer s.updateMu.Unlock()
			// Updates are serialised here, so a journal-veto count that
			// moves across this evaluation can only mean parts of THIS
			// update were refused by the WAL — it must not report
			// success. (Reads never journal, so they skip the check.)
			var vetoes uint64
			if s.cfg.Store != nil {
				vetoes = s.cfg.Store.JournalVetoes()
			}
			res, evalErr = s.cfg.Engine.EvalContext(ctx, parsed)
			if evalErr == nil && s.cfg.Store != nil && s.cfg.Store.JournalVetoes() != vetoes {
				evalErr = fmt.Errorf("%w: %v", errJournalVeto, s.cfg.Store.JournalErr())
			}
			return
		}
		s.updateMu.RLock()
		defer s.updateMu.RUnlock()
		res, evalErr = s.cfg.Engine.EvalContext(ctx, parsed)
	}); err != nil {
		return nil, err
	}
	s.adm.observe(time.Since(start))
	if evalErr != nil {
		return nil, evalErr
	}
	if !update && s.cfg.Store != nil &&
		len(res.Bindings)+len(res.Triples) <= s.cfg.MaxCacheableRows {
		// Re-read the fingerprint: if a concurrent update landed during
		// evaluation, caching under the old version would pin a result
		// that mixes both states. Skip caching in that case.
		if now := s.storeVersion(); now == version {
			s.cache.Put(src, version, res)
		}
	}
	return res, nil
}

// storeVersion snapshots the store-state fingerprint that keys the
// result cache and the ETag. On a replica the AppliedSeq half also
// moves under replicated writes (which bypass this server's updateMu),
// keeping cached results from outliving shipped mutations.
func (s *Server) storeVersion() CacheVersion {
	if s.cfg.Store == nil {
		return CacheVersion{}
	}
	return CacheVersion{
		Version:    s.cfg.Store.Version(),
		AppliedSeq: s.cfg.Store.AppliedSeq(),
	}
}

// readETag derives the strong validator for a read: two requests agree
// iff query text, store fingerprint and serialisation format all agree.
func readETag(src string, cv CacheVersion, format Format) string {
	h := fnv.New64a()
	io.WriteString(h, src)
	fmt.Fprintf(h, "|%d|%d|%d", cv.Version, cv.AppliedSeq, format)
	return fmt.Sprintf("\"t%016x\"", h.Sum64())
}

// inmMatches reports whether an If-None-Match header value matches the
// given ETag (exact entity-tag or the * wildcard).
func inmMatches(inm, etag string) bool {
	if inm == "" {
		return false
	}
	for _, part := range strings.Split(inm, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	triples := -1
	if s.cfg.Store != nil {
		triples = s.cfg.Store.Len()
	}
	fmt.Fprintf(w, "{\"status\":\"ok\",\"triples\":%d}\n", triples)
}

// storeStats mirrors strabon.Stats with the JSON field names the
// endpoint exposes. AppliedSeq is load-bearing beyond telemetry: the
// replication router's health loop reads store.applied_seq to track
// each backend's lag and steer watermarked reads.
type storeStats struct {
	Triples         int    `json:"triples"`
	Terms           int    `json:"terms"`
	SpatialLiterals int    `json:"spatial_literals"`
	Predicates      int    `json:"predicates"`
	Version         uint64 `json:"version"`
	AppliedSeq      uint64 `json:"applied_seq"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var st strabon.Stats
	ss := storeStats{}
	if s.cfg.Store != nil {
		st = s.cfg.Store.Stats()
		ss.Version = s.cfg.Store.Version()
		ss.AppliedSeq = s.cfg.Store.AppliedSeq()
	}
	ss.Triples = st.Triples
	ss.Terms = st.Terms
	ss.SpatialLiterals = st.SpatialLiterals
	ss.Predicates = st.Predicates
	var durability DurabilityStats
	if s.cfg.DurabilityStats != nil {
		durability = s.cfg.DurabilityStats()
		durability.Enabled = true
	}
	var repl any
	if s.cfg.ReplicationStats != nil {
		repl = s.cfg.ReplicationStats()
	}
	ps := s.pool.Stats()
	json.NewEncoder(w).Encode(struct {
		Store       storeStats      `json:"store"`
		Cache       CacheStats      `json:"cache"`
		Pool        PoolStats       `json:"pool"`
		Admission   AdmissionStats  `json:"admission"`
		Persistence DurabilityStats `json:"persistence"`
		Replication any             `json:"replication,omitempty"`
	}{
		Store:       ss,
		Cache:       s.cache.Stats(),
		Pool:        ps,
		Admission:   s.adm.stats(ps, s.degradedErr()),
		Persistence: durability,
		Replication: repl,
	})
}

// handleIndex serves a minimal service description so that hitting the
// root with a browser or curl is self-explanatory.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, `TELEIOS stSPARQL endpoint

  GET  /sparql?query=...   evaluate a query (Accept: application/sparql-results+json,
                           text/csv, text/tab-separated-values, application/geo+json;
                           or ?format=json|csv|tsv|geojson)
  POST /sparql             query= or update= form field, or a raw
                           application/sparql-query body
  POST /ingest             streaming N-Triples bulk load (chunked bodies
                           welcome); commits in pipelined batches
  GET  /health             liveness and triple count
  GET  /stats              store / cache / worker-pool counters
`)
}
