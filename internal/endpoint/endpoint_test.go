package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

const (
	exNS  = "http://example.org/"
	noaNS = "http://teleios.di.uoa.gr/noa#"
)

// fixture builds a store with towns carrying point geometries and
// populations, plus one polygon region.
func fixture() (*strabon.Store, *stsparql.Engine) {
	st := strabon.NewStore()
	add := func(name string, pop int64, wkt string) {
		iri := rdf.IRI(exNS + name)
		st.Add(rdf.NewTriple(iri, rdf.IRI(rdf.RDFType), rdf.IRI(exNS+"Town")))
		st.Add(rdf.NewTriple(iri, rdf.IRI(rdf.RDFSLabel), rdf.Literal(name)))
		st.Add(rdf.NewTriple(iri, rdf.IRI(noaNS+"population"), rdf.IntegerLiteral(pop)))
		st.Add(rdf.NewTriple(iri, rdf.IRI(noaNS+"hasGeometry"), rdf.WKTLiteral(wkt, 4326)))
	}
	add("athens", 3000000, "POINT (23.72 37.98)")
	add("sparta", 35000, "POINT (22.43 37.07)")
	add("thessaloniki", 1000000, "POINT (22.94 40.64)")
	region := rdf.IRI(exNS + "peloponnese")
	st.Add(rdf.NewTriple(region, rdf.IRI(rdf.RDFType), rdf.IRI(exNS+"Region")))
	st.Add(rdf.NewTriple(region, rdf.IRI(noaNS+"hasGeometry"),
		rdf.WKTLiteral("POLYGON ((21 36.4, 23.5 36.4, 23.5 38.4, 21 38.4, 21 36.4))", 4326)))
	return st, stsparql.New(st)
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	st, eng := fixture()
	cfg := Config{Engine: eng, Store: st}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

const townQuery = `
	PREFIX noa: <http://teleios.di.uoa.gr/noa#>
	SELECT ?name ?pop ?geom WHERE {
		?t a <http://example.org/Town> .
		?t rdfs:label ?name .
		?t noa:population ?pop .
		?t noa:hasGeometry ?geom .
	} ORDER BY ?name`

func get(t *testing.T, base, query string, header http.Header) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/sparql?query="+url.QueryEscape(query), nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

type sparqlJSON struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]struct {
			Type     string `json:"type"`
			Value    string `json:"value"`
			Datatype string `json:"datatype"`
			Lang     string `json:"xml:lang"`
		} `json:"bindings"`
	} `json:"results"`
	Boolean *bool `json:"boolean"`
}

func TestSelectJSON(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL, townQuery, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var out sparqlJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if want := []string{"name", "pop", "geom"}; fmt.Sprint(out.Head.Vars) != fmt.Sprint(want) {
		t.Fatalf("vars = %v, want %v", out.Head.Vars, want)
	}
	if len(out.Results.Bindings) != 3 {
		t.Fatalf("got %d rows, want 3", len(out.Results.Bindings))
	}
	first := out.Results.Bindings[0]
	if first["name"].Value != "athens" || first["name"].Type != "literal" {
		t.Fatalf("first row name = %+v", first["name"])
	}
	if first["pop"].Datatype != rdf.XSDInteger {
		t.Fatalf("pop datatype = %q", first["pop"].Datatype)
	}
	if first["geom"].Datatype != rdf.StRDFWKT {
		t.Fatalf("geom datatype = %q", first["geom"].Datatype)
	}
}

func TestSpatialQueryGeoJSON(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Towns inside the Peloponnese polygon: only sparta.
	query := `
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?name ?geom WHERE {
			?t a <http://example.org/Town> .
			?t rdfs:label ?name .
			?t noa:hasGeometry ?geom .
			FILTER(strdf:within(?geom, "POLYGON ((21 36.4, 23.5 36.4, 23.5 38.4, 21 38.4, 21 36.4))"^^strdf:WKT))
		}`
	resp, body := get(t, ts.URL, query, http.Header{"Accept": []string{"application/geo+json"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/geo+json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Geometry *struct {
				Type        string     `json:"type"`
				Coordinates [2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]string `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(body, &fc); err != nil {
		t.Fatalf("invalid GeoJSON: %v\n%s", err, body)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) != 1 {
		t.Fatalf("got %s with %d features, want FeatureCollection with 1", fc.Type, len(fc.Features))
	}
	f := fc.Features[0]
	if f.Geometry == nil || f.Geometry.Type != "Point" {
		t.Fatalf("geometry = %+v", f.Geometry)
	}
	if f.Geometry.Coordinates != [2]float64{22.43, 37.07} {
		t.Fatalf("coordinates = %v", f.Geometry.Coordinates)
	}
	if f.Properties["name"] != "sparta" {
		t.Fatalf("properties = %v", f.Properties)
	}
}

func TestContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		accept, format string
		wantCT         string
	}{
		{"", "", "application/sparql-results+json"},
		{"application/json", "", "application/sparql-results+json"},
		{"text/csv", "", "text/csv; charset=utf-8"},
		{"text/tab-separated-values", "", "text/tab-separated-values; charset=utf-8"},
		{"application/geo+json", "", "application/geo+json"},
		{"text/csv;q=0.5, application/sparql-results+json", "", "application/sparql-results+json"},
		{"application/xml;q=0.9, text/csv;q=0.8", "", "text/csv; charset=utf-8"},
		// format= overrides Accept.
		{"text/csv", "geojson", "application/geo+json"},
		{"", "tsv", "text/tab-separated-values; charset=utf-8"},
	}
	for _, c := range cases {
		u := ts.URL + "/sparql?query=" + url.QueryEscape(townQuery)
		if c.format != "" {
			u += "&format=" + c.format
		}
		req, _ := http.NewRequest(http.MethodGet, u, nil)
		if c.accept != "" {
			req.Header.Set("Accept", c.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("Accept %q format %q: status %d", c.accept, c.format, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != c.wantCT {
			t.Errorf("Accept %q format %q: Content-Type = %q, want %q", c.accept, c.format, ct, c.wantCT)
		}
	}
}

func TestCSVAndTSVBodies(t *testing.T) {
	_, ts := newTestServer(t, nil)
	query := `SELECT ?name WHERE { ?t rdfs:label ?name } ORDER BY ?name`
	_, csvBody := get(t, ts.URL, query, http.Header{"Accept": []string{"text/csv"}})
	wantCSV := "name\r\nathens\r\nsparta\r\nthessaloniki\r\n"
	if string(csvBody) != wantCSV {
		t.Errorf("CSV body = %q, want %q", csvBody, wantCSV)
	}
	_, tsvBody := get(t, ts.URL, query, http.Header{"Accept": []string{"text/tab-separated-values"}})
	wantTSV := "?name\r\n\"athens\"\r\n\"sparta\"\r\n\"thessaloniki\"\r\n"
	if string(tsvBody) != wantTSV {
		t.Errorf("TSV body = %q, want %q", tsvBody, wantTSV)
	}
}

func TestAskAndConstruct(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL, `ASK WHERE { <http://example.org/athens> a <http://example.org/Town> }`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ASK status = %d", resp.StatusCode)
	}
	var ask sparqlJSON
	if err := json.Unmarshal(body, &ask); err != nil || ask.Boolean == nil || !*ask.Boolean {
		t.Fatalf("ASK body = %s (err %v)", body, err)
	}
	resp, body = get(t, ts.URL, `
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		CONSTRUCT { ?t <http://example.org/pop> ?p } WHERE { ?t noa:population ?p }`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("CONSTRUCT status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-triples" {
		t.Fatalf("CONSTRUCT Content-Type = %q", ct)
	}
	if n := strings.Count(string(body), "\n"); n != 3 {
		t.Fatalf("CONSTRUCT returned %d statements:\n%s", n, body)
	}
}

func TestMalformedAndMissingQuery(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL, "SELECT WHERE garbage {{{", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query: status = %d, body %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/sparql")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing query: status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sparql", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: status = %d", resp.StatusCode)
	}
}

func TestPostFormsAndRawBody(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Form-encoded query.
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"query": {townQuery}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST form: status %d, body %s", resp.StatusCode, body)
	}
	// Raw sparql-query body.
	resp, err = http.Post(ts.URL+"/sparql", "application/sparql-query", strings.NewReader(townQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST raw: status %d, body %s", resp.StatusCode, body)
	}
	var out sparqlJSON
	if err := json.Unmarshal(body, &out); err != nil || len(out.Results.Bindings) != 3 {
		t.Fatalf("POST raw body = %s (err %v)", body, err)
	}
}

func TestUpdateLifecycle(t *testing.T) {
	st, eng := fixture()
	srv, err := NewServer(Config{Engine: eng, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	countQuery := `SELECT (count(*) AS ?n) WHERE { ?t a <http://example.org/Town> }`
	countTowns := func() string {
		t.Helper()
		_, body := get(t, ts.URL, countQuery, nil)
		var out sparqlJSON
		if err := json.Unmarshal(body, &out); err != nil || len(out.Results.Bindings) != 1 {
			t.Fatalf("count body = %s (err %v)", body, err)
		}
		return out.Results.Bindings[0]["n"].Value
	}
	if got := countTowns(); got != "3" {
		t.Fatalf("initial towns = %s", got)
	}

	update := `INSERT DATA { <http://example.org/corinth> a <http://example.org/Town> }`
	// Updates over GET are refused.
	resp, _ := get(t, ts.URL, update, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET update: status = %d", resp.StatusCode)
	}
	// Updates over POST apply and invalidate the cached count.
	resp, err = http.PostForm(ts.URL+"/sparql", url.Values{"update": {update}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != `{"affected":1}` {
		t.Fatalf("POST update: status %d body %s", resp.StatusCode, body)
	}
	if got := countTowns(); got != "4" {
		t.Fatalf("towns after insert = %s, want 4 (stale cache?)", got)
	}
}

func TestAskGeoJSONFallsBackToJSON(t *testing.T) {
	// An ASK result has no geometry: format=geojson must not claim
	// application/geo+json over a SPARQL-JSON body.
	_, ts := newTestServer(t, nil)
	resp2, err := http.Get(ts.URL + "/sparql?format=geojson&query=" +
		url.QueryEscape(`ASK WHERE { <http://example.org/athens> a <http://example.org/Town> }`))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("ASK geojson Content-Type = %q", ct)
	}
	var out sparqlJSON
	if err := json.Unmarshal(body2, &out); err != nil || out.Boolean == nil || !*out.Boolean {
		t.Fatalf("ASK geojson body = %s (err %v)", body2, err)
	}
}

func TestUpdateIgnoresAcceptHeader(t *testing.T) {
	// Update responses are always JSON; an unsupported Accept must not
	// 406 the request before it executes.
	_, ts := newTestServer(t, nil)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/sparql",
		strings.NewReader(url.Values{"update": {`INSERT DATA { <http://example.org/x> a <http://example.org/Town> }`}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != `{"affected":1}` {
		t.Fatalf("update with XML Accept: status %d body %s", resp.StatusCode, body)
	}
}

func TestConcurrentUpdatesAreSerialized(t *testing.T) {
	// DELETE/INSERT WHERE is not atomic inside the engine (per-triple
	// store locking); the server must serialise update statements so two
	// concurrent modifies cannot both match the same pre-state and leave
	// duplicate rows.
	_, ts := newTestServer(t, func(c *Config) { c.MaxConcurrency = 8 })
	seed := `INSERT DATA { <http://example.org/reg> <http://example.org/val> "v0" }`
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {seed}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			up := fmt.Sprintf(`DELETE { <http://example.org/reg> <http://example.org/val> ?old }
				INSERT { <http://example.org/reg> <http://example.org/val> "v%d" }
				WHERE { <http://example.org/reg> <http://example.org/val> ?old }`, i+1)
			resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {up}})
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	// Exactly one value must survive; interleaved updates would leave
	// several (each seeing the same ?old and inserting its own value).
	_, body := get(t, ts.URL,
		`SELECT (count(*) AS ?n) WHERE { <http://example.org/reg> <http://example.org/val> ?v }`, nil)
	var out sparqlJSON
	if err := json.Unmarshal(body, &out); err != nil || len(out.Results.Bindings) != 1 {
		t.Fatalf("count body = %s (err %v)", body, err)
	}
	if got := out.Results.Bindings[0]["n"].Value; got != "1" {
		t.Fatalf("register holds %s values after concurrent updates, want exactly 1", got)
	}
}

func TestUnreprojectableGeometryIsNull(t *testing.T) {
	// A spatial literal whose CRS cannot be transformed to WGS84 must
	// render as a null geometry, never as raw planar coordinates
	// mislabeled as lon/lat — including via the store's ingest cache,
	// which keeps the original coordinates on transform failure.
	st, eng := fixture()
	st.Add(rdf.NewTriple(rdf.IRI(exNS+"odd"), rdf.IRI(noaNS+"hasGeometry"),
		rdf.WKTLiteral("POINT (500000 4100000)", 99999)))
	srv, err := NewServer(Config{Engine: eng, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	query := `PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?g WHERE { <http://example.org/odd> noa:hasGeometry ?g }`
	resp, err := http.Get(ts.URL + "/sparql?format=geojson&query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var fc struct {
		Features []struct {
			Geometry any `json:"geometry"`
		} `json:"features"`
	}
	if err := json.Unmarshal(body, &fc); err != nil || len(fc.Features) != 1 {
		t.Fatalf("body = %s (err %v)", body, err)
	}
	if fc.Features[0].Geometry != nil {
		t.Fatalf("unreprojectable geometry rendered as %v, want null", fc.Features[0].Geometry)
	}
}

func TestUnsupportedWildcardAccept406(t *testing.T) {
	// Only */*, application/* and text/* are wildcards the endpoint can
	// satisfy; image/* names a range it cannot serve.
	_, ts := newTestServer(t, nil)
	resp, _ := get(t, ts.URL, townQuery, http.Header{"Accept": []string{"image/png, image/*"}})
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("image/* Accept: status = %d", resp.StatusCode)
	}
}

func TestReadOnlyRejectsUpdates(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.ReadOnly = true })
	resp, err := http.PostForm(ts.URL+"/sparql",
		url.Values{"update": {`INSERT DATA { <http://example.org/x> a <http://example.org/Town> }`}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only update: status = %d", resp.StatusCode)
	}
}

// slowEngine delays every evaluation until released (or for a fixed
// duration), to exercise timeouts and overload behaviour.
type slowEngine struct {
	inner QueryEngine
	delay time.Duration
	gate  chan struct{} // when non-nil, Query blocks until it closes
}

func (s *slowEngine) EvalContext(ctx context.Context, q *stsparql.Query) (*stsparql.Result, error) {
	if s.gate != nil {
		<-s.gate
	} else {
		time.Sleep(s.delay)
	}
	return s.inner.EvalContext(ctx, q)
}

type panickyEngine struct{}

func (panickyEngine) EvalContext(ctx context.Context, q *stsparql.Query) (*stsparql.Result, error) {
	panic("evaluator bug")
}

func TestEvaluatorPanicIs500NotCrash(t *testing.T) {
	st, _ := fixture()
	srv, err := NewServer(Config{Engine: panickyEngine{}, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := get(t, ts.URL, `ASK WHERE { ?s ?p ?o }`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), "evaluator bug") {
		t.Fatalf("panic value leaked to the client: %s", body)
	}
	// The worker survived: a second request is still served.
	resp, _ = get(t, ts.URL, `ASK WHERE { ?s ?p ?o }`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second request status = %d (worker dead?)", resp.StatusCode)
	}
}

func TestQueryTimeout503(t *testing.T) {
	st, eng := fixture()
	srv, err := NewServer(Config{
		Engine:       &slowEngine{inner: eng, delay: 200 * time.Millisecond},
		Store:        st,
		QueryTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := get(t, ts.URL, townQuery, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout response lacks Retry-After")
	}
	if srv.pool.Stats().TimedOut != 1 {
		t.Fatalf("pool stats = %+v", srv.pool.Stats())
	}
}

// ctxEngine blocks until the evaluation context is cancelled, proving
// the deadline reaches the engine (not just the pool wrapper).
type ctxEngine struct{ sawCancel chan struct{} }

func (c *ctxEngine) EvalContext(ctx context.Context, q *stsparql.Query) (*stsparql.Result, error) {
	<-ctx.Done()
	close(c.sawCancel)
	return nil, ctx.Err()
}

// TestTimeoutCancelsEvaluation: the per-query deadline must propagate
// into the engine's context so a timed-out query STOPS evaluating
// instead of running to completion after the client is gone.
func TestTimeoutCancelsEvaluation(t *testing.T) {
	st, _ := fixture()
	ce := &ctxEngine{sawCancel: make(chan struct{})}
	srv, err := NewServer(Config{
		Engine:       ce,
		Store:        st,
		QueryTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := get(t, ts.URL, `ASK { ?s ?p ?o }`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	select {
	case <-ce.sawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("engine never observed the cancelled context")
	}
}

// TestExplainOverHTTP: an EXPLAIN statement flows through the protocol
// endpoint as an ordinary SELECT result with the single ?plan variable.
func TestExplainOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL, "EXPLAIN "+townQuery, http.Header{"Accept": {"application/sparql-results+json"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(doc.Head.Vars) != 1 || doc.Head.Vars[0] != "plan" {
		t.Fatalf("vars = %v, want [plan]", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) < 4 {
		t.Fatalf("plan has %d lines, want at least header + 3 operators", len(doc.Results.Bindings))
	}
	all := ""
	for _, b := range doc.Results.Bindings {
		all += b["plan"].Value + "\n"
	}
	for _, want := range []string{"est=", "rows=", "workers=", "order=statistics", "project"} {
		if !strings.Contains(all, want) {
			t.Fatalf("plan missing %q:\n%s", want, all)
		}
	}
	// EXPLAIN ASK / CONSTRUCT serialise as binding tables too — not as
	// a bare boolean or an empty graph (regression: serialisation used
	// to follow the explained form).
	resp, body = get(t, ts.URL, `EXPLAIN ASK { ?s ?p ?o }`, http.Header{"Accept": {"text/csv"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("EXPLAIN ASK status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "ASK") || !strings.Contains(string(body), "est=") {
		t.Fatalf("EXPLAIN ASK body is not a plan:\n%s", body)
	}
	resp, body = get(t, ts.URL, `EXPLAIN CONSTRUCT { ?s a <http://ex/T> } WHERE { ?s ?p ?o }`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("EXPLAIN CONSTRUCT status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "CONSTRUCT") || !strings.Contains(string(body), "est=") {
		t.Fatalf("EXPLAIN CONSTRUCT body is not a plan:\n%s", body)
	}

	// EXPLAIN of an update is rejected at parse time with a 400.
	resp, _ = get(t, ts.URL, `EXPLAIN INSERT DATA { <http://ex/a> <http://ex/b> <http://ex/c> }`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("EXPLAIN update status = %d, want 400", resp.StatusCode)
	}
}

func TestOverload503(t *testing.T) {
	st, eng := fixture()
	gate := make(chan struct{})
	srv, err := NewServer(Config{
		Engine:         &slowEngine{inner: eng, gate: gate},
		Store:          st,
		MaxConcurrency: 1,
		QueueDepth:     1,
		QueryTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Fill the single worker and the single queue slot with gated
	// queries, then overflow.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		query := fmt.Sprintf("SELECT ?t WHERE { ?t a <http://example.org/Town%d> }", i)
		go func() {
			resp, _ := get(t, ts.URL, query, nil)
			results <- resp.StatusCode
		}()
	}
	// Wait until one query occupies the worker and one the queue.
	deadline := time.Now().Add(2 * time.Second)
	for srv.pool.Stats().Submitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queries never reached the pool")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := get(t, ts.URL, townQuery, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d, body %s", resp.StatusCode, body)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("gated query %d finished with %d", i, code)
		}
	}
}

func TestConcurrentRequestsCorrectness(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxConcurrency = 4
		c.CacheSize = 8
	})
	queries := []struct {
		query string
		check func([]byte) error
	}{
		{townQuery, func(b []byte) error {
			var out sparqlJSON
			if err := json.Unmarshal(b, &out); err != nil {
				return err
			}
			if len(out.Results.Bindings) != 3 {
				return fmt.Errorf("got %d rows", len(out.Results.Bindings))
			}
			return nil
		}},
		{`ASK WHERE { <http://example.org/sparta> a <http://example.org/Town> }`, func(b []byte) error {
			var out sparqlJSON
			if err := json.Unmarshal(b, &out); err != nil {
				return err
			}
			if out.Boolean == nil || !*out.Boolean {
				return fmt.Errorf("ASK = %s", b)
			}
			return nil
		}},
		{`SELECT ?r WHERE { ?r a <http://example.org/Region> }`, func(b []byte) error {
			var out sparqlJSON
			if err := json.Unmarshal(b, &out); err != nil {
				return err
			}
			if len(out.Results.Bindings) != 1 || out.Results.Bindings[0]["r"].Value != exNS+"peloponnese" {
				return fmt.Errorf("regions = %s", b)
			}
			return nil
		}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for i := 0; i < 20; i++ {
		for _, q := range queries {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, body := get(t, ts.URL, q.query, nil)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				if err := q.check(body); err != nil {
					errs <- err
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOversizedResultsAreNotCached(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.MaxCacheableRows = 2 })
	// 3 town rows exceed the cap: served fine, never cached.
	resp, _ := get(t, ts.URL, townQuery, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if srv.cache.Len() != 0 {
		t.Fatalf("oversized result was cached (%d entries)", srv.cache.Len())
	}
	// A 1-row result stays cacheable.
	get(t, ts.URL, `SELECT ?r WHERE { ?r a <http://example.org/Region> }`, nil)
	if srv.cache.Len() != 1 {
		t.Fatalf("small result not cached (%d entries)", srv.cache.Len())
	}
}

func TestCacheHitsAndLRU(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.CacheSize = 2 })
	q1 := `SELECT ?r WHERE { ?r a <http://example.org/Region> }`
	q2 := `ASK WHERE { <http://example.org/athens> a <http://example.org/Town> }`
	q3 := townQuery
	get(t, ts.URL, q1, nil)
	get(t, ts.URL, q1, nil)
	cs := srv.cache.Stats()
	if cs.Hits != 1 || cs.Entries != 1 {
		t.Fatalf("after repeat: %+v", cs)
	}
	get(t, ts.URL, q2, nil) // cache: q1, q2
	get(t, ts.URL, q3, nil) // evicts q1
	if srv.cache.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", srv.cache.Len())
	}
	get(t, ts.URL, q1, nil) // must be a miss again
	cs = srv.cache.Stats()
	if cs.Hits != 1 {
		t.Fatalf("LRU eviction failed: %+v", cs)
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var health struct {
		Status  string `json:"status"`
		Triples int    `json:"triples"`
	}
	if err := json.Unmarshal(body, &health); err != nil || health.Status != "ok" || health.Triples != 14 {
		t.Fatalf("health = %s (err %v)", body, err)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Store struct {
			Triples int `json:"triples"`
		} `json:"store"`
		Pool struct {
			Workers int `json:"workers"`
		} `json:"pool"`
	}
	if err := json.Unmarshal(body, &stats); err != nil || stats.Store.Triples != 14 || stats.Pool.Workers != 8 {
		t.Fatalf("stats = %s (err %v)", body, err)
	}
}

// vetoJournal refuses every append after fail is set — the disk-full
// case surfaced through the update path.
type vetoJournal struct {
	fail bool
	seq  uint64
}

func (j *vetoJournal) LogAdd([]rdf.Triple) (strabon.Commit, error) {
	if j.fail {
		return strabon.Commit{}, errors.New("no space left on device")
	}
	j.seq++
	return strabon.Commit{Seq: j.seq}, nil
}
func (j *vetoJournal) LogRemove(rdf.Triple) (strabon.Commit, error) {
	j.seq++
	return strabon.Commit{Seq: j.seq}, nil
}
func (j *vetoJournal) LogCompact() (strabon.Commit, error) {
	j.seq++
	return strabon.Commit{Seq: j.seq}, nil
}

// TestUpdateJournalVetoIs500: an update whose WAL append fails must not
// be acknowledged with a 200 — the client would believe a write durable
// that was neither applied nor logged.
func TestUpdateJournalVetoIs500(t *testing.T) {
	j := &vetoJournal{}
	srv, ts := newTestServer(t, nil)
	srv.cfg.Store.SetJournal(j)
	post := func(update string) int {
		resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {update}})
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	const ins = `INSERT DATA { <http://example.org/veto> a <http://example.org/Town> }`
	if code := post(ins); code != http.StatusOK {
		t.Fatalf("healthy journal: status %d", code)
	}
	j.fail = true
	if code := post(`INSERT DATA { <http://example.org/veto2> a <http://example.org/Town> }`); code != http.StatusInternalServerError {
		t.Fatalf("vetoed update: status %d, want 500", code)
	}
	// Reads keep working, and recovery of the journal restores 200s.
	j.fail = false
	if code := post(`INSERT DATA { <http://example.org/veto3> a <http://example.org/Town> }`); code != http.StatusOK {
		t.Fatalf("recovered journal: status %d", code)
	}
}

func TestStatsPersistenceBlock(t *testing.T) {
	// Without a durability source the block reports enabled=false.
	_, ts := newTestServer(t, nil)
	var stats struct {
		Persistence DurabilityStats `json:"persistence"`
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &stats); err != nil || stats.Persistence.Enabled {
		t.Fatalf("stats without durability = %s (err %v)", body, err)
	}
	// With one, the wired telemetry comes through.
	_, ts2 := newTestServer(t, func(c *Config) {
		c.DurabilityStats = func() DurabilityStats {
			return DurabilityStats{WALBytes: 1234, WALSeq: 42, Snapshots: 2, ReplayedRecords: 7}
		}
	})
	resp, err = http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	p := stats.Persistence
	if !p.Enabled || p.WALBytes != 1234 || p.WALSeq != 42 || p.Snapshots != 2 || p.ReplayedRecords != 7 {
		t.Fatalf("persistence block = %+v (%s)", p, body)
	}
}

func TestNotAcceptable(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := get(t, ts.URL, townQuery, http.Header{"Accept": []string{"application/xml"}})
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// An unknown ?format= value blames the parameter, not Accept: 400.
	resp, err := http.Get(ts.URL + "/sparql?format=bogus&query=" + url.QueryEscape(townQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), `"bogus"`) {
		t.Fatalf("bogus format: status = %d body %s", resp.StatusCode, body)
	}
	// A CONSTRUCT cannot be a bindings table: explicitly accepting only
	// text/csv is a 406, while a wildcard falls back to N-Triples.
	construct := `CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }`
	resp, _ = get(t, ts.URL, construct, http.Header{"Accept": []string{"text/csv"}})
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("CONSTRUCT with csv-only Accept: status = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL, construct, http.Header{"Accept": []string{"text/csv, */*;q=0.1"}})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/n-triples" {
		t.Fatalf("CONSTRUCT with wildcard Accept: status = %d ct = %q",
			resp.StatusCode, resp.Header.Get("Content-Type"))
	}
}
