package endpoint

import (
	"fmt"

	"repro/internal/geo"
)

// geoJSONGeometry converts a geo.Geometry into the map shape that
// encoding/json serialises as a GeoJSON (RFC 7946) geometry object.
// Geometries reaching the endpoint are already WGS84 (the store
// normalises spatial literals on ingest), matching GeoJSON's mandated
// CRS.
func geoJSONGeometry(g geo.Geometry) (map[string]any, error) {
	switch t := g.(type) {
	case geo.Point:
		return gj("Point", pos(t)), nil
	case geo.MultiPoint:
		coords := make([][2]float64, len(t.Points))
		for i, p := range t.Points {
			coords[i] = pos(p)
		}
		return gj("MultiPoint", coords), nil
	case geo.LineString:
		return gj("LineString", line(t.Coords)), nil
	case geo.MultiLineString:
		coords := make([][][2]float64, len(t.Lines))
		for i, l := range t.Lines {
			coords[i] = line(l.Coords)
		}
		return gj("MultiLineString", coords), nil
	case geo.Polygon:
		return gj("Polygon", polyRings(t)), nil
	case geo.MultiPolygon:
		coords := make([][][][2]float64, len(t.Polygons))
		for i, p := range t.Polygons {
			coords[i] = polyRings(p)
		}
		return gj("MultiPolygon", coords), nil
	case geo.GeometryCollection:
		members := make([]map[string]any, 0, len(t.Geometries))
		for _, m := range t.Geometries {
			enc, err := geoJSONGeometry(m)
			if err != nil {
				return nil, err
			}
			members = append(members, enc)
		}
		return map[string]any{"type": "GeometryCollection", "geometries": members}, nil
	default:
		return nil, fmt.Errorf("endpoint: no GeoJSON encoding for %T", g)
	}
}

func gj(typ string, coords any) map[string]any {
	return map[string]any{"type": typ, "coordinates": coords}
}

// pos encodes one position as [longitude, latitude], the GeoJSON axis
// order (which matches the X=lon, Y=lat convention of internal/geo).
func pos(p geo.Point) [2]float64 { return [2]float64{p.X, p.Y} }

func line(coords []geo.Point) [][2]float64 {
	out := make([][2]float64, len(coords))
	for i, p := range coords {
		out[i] = pos(p)
	}
	return out
}

func polyRings(p geo.Polygon) [][][2]float64 {
	rings := make([][][2]float64, 0, 1+len(p.Holes))
	rings = append(rings, line(p.Exterior.Coords))
	for _, h := range p.Holes {
		rings = append(rings, line(h.Coords))
	}
	return rings
}
