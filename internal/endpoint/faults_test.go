package endpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/persist"
	"repro/internal/stsparql"
)

// Admission-control and failpoint chaos for the HTTP endpoint: rate
// limits, load shedding with honest Retry-After hints, degraded
// read-only mode on a broken WAL, and clients that vanish mid-request.
// Failpoints are process-global; no test here may run in parallel.

func armEndpointFaults(t *testing.T, spec string) {
	t.Helper()
	t.Cleanup(faults.Reset)
	if err := faults.EnableFromSpec(spec); err != nil {
		t.Fatalf("EnableFromSpec(%q): %v", spec, err)
	}
}

func admissionStats(t *testing.T, base string) AdmissionStats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Admission AdmissionStats `json:"admission"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("bad /stats: %v\n%s", err, body)
	}
	return stats.Admission
}

// TestPerClientRateLimit429: a client that exceeds its token bucket
// gets 429 with a Retry-After hint, while other tenants sail through —
// the buckets are per-key, not global.
func TestPerClientRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.RateLimit = 1
		c.RateBurst = 2
	})
	ask := `ASK WHERE { ?s ?p ?o }`
	alice := http.Header{TenantHeader: {"alice"}}

	for i := 0; i < 2; i++ {
		if resp, body := get(t, ts.URL, ask, alice); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	resp, body := get(t, ts.URL, ask, alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d, body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive hint", ra)
	}
	// A different tenant has its own untouched bucket.
	if resp, body := get(t, ts.URL, ask, http.Header{TenantHeader: {"bob"}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d, body %s", resp.StatusCode, body)
	}
	if st := admissionStats(t, ts.URL); st.RateLimited < 1 || st.Clients < 2 {
		t.Fatalf("admission stats = %+v, want rate_limited >= 1 and clients >= 2", st)
	}
}

// TestShedWatermark503: once the queue crosses the watermark, new
// queries are refused BEFORE the pool saturates, with a Retry-After
// computed from the observed latency — graceful degradation, not a
// cliff. The gated queries all still complete.
func TestShedWatermark503(t *testing.T) {
	st, eng := fixture()
	gate := make(chan struct{})
	srv, err := NewServer(Config{
		Engine:         &slowEngine{inner: eng, gate: gate},
		Store:          st,
		MaxConcurrency: 1,
		QueueDepth:     4,
		ShedWatermark:  0.5, // shed at 2 of 4 queued
		QueryTimeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One query occupies the worker, two more the queue.
	results := make(chan int, 3)
	for i := 0; i < 3; i++ {
		query := fmt.Sprintf("SELECT ?t WHERE { ?t a <http://example.org/Shed%d> }", i)
		go func() {
			resp, _ := get(t, ts.URL, query, nil)
			results <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.pool.Stats().Queued < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", srv.pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := get(t, ts.URL, townQuery, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("watermark status = %d, body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed 503 without a Retry-After hint")
	}
	stats := admissionStats(t, ts.URL)
	if stats.Shed < 1 {
		t.Fatalf("admission stats = %+v, want shed >= 1", stats)
	}
	if stats.RetryAfterHintS < 1 {
		t.Fatalf("retry_after_hint_s = %d, want >= 1", stats.RetryAfterHintS)
	}

	close(gate)
	for i := 0; i < 3; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("gated query %d finished with %d", i, code)
		}
	}
}

// TestDegradedReadOnlyMode: with DegradedCheck reporting a failure the
// endpoint keeps serving reads but refuses updates with a clear 503
// naming the cause; recovery flips it back without a restart.
func TestDegradedReadOnlyMode(t *testing.T) {
	var broken atomic.Bool
	_, ts := newTestServer(t, func(c *Config) {
		c.DegradedCheck = func() error {
			if broken.Load() {
				return fmt.Errorf("wal broken by an earlier append failure")
			}
			return nil
		}
	})
	post := func(update string) (*http.Response, string) {
		resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {update}})
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	if resp, body := post(`INSERT DATA { <http://example.org/d1> a <http://example.org/Town> }`); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy update: status %d, body %s", resp.StatusCode, body)
	}
	broken.Store(true)
	resp, body := post(`INSERT DATA { <http://example.org/d2> a <http://example.org/Town> }`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded update: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "degraded read-only mode") || !strings.Contains(body, "wal broken") {
		t.Fatalf("degraded 503 body does not name the cause: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 without Retry-After")
	}
	// Reads keep serving from the in-memory store.
	if resp, body := get(t, ts.URL, townQuery, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded read: status %d, body %s", resp.StatusCode, body)
	}
	st := admissionStats(t, ts.URL)
	if !st.Degraded || st.DegradedDenials < 1 || !strings.Contains(st.DegradedError, "wal broken") {
		t.Fatalf("admission stats = %+v, want degraded with denials", st)
	}
	broken.Store(false)
	if resp, body := post(`INSERT DATA { <http://example.org/d3> a <http://example.org/Town> }`); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered update: status %d, body %s", resp.StatusCode, body)
	}
}

// TestWALBreakDegradesEndpointEndToEnd is the full stack under the
// double fault: a torn WAL append whose rollback also fails. The update
// that hit it gets a 500 (not applied, not durable), every later update
// gets the degraded-mode 503, and reads never stop. This is the exact
// path teleios-server wires via DegradedCheck: persist.Manager.Broken.
func TestWALBreakDegradesEndpointEndToEnd(t *testing.T) {
	mgr, st, err := persist.Open(persist.Options{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	srv, err := NewServer(Config{
		Engine:        stsparql.New(st),
		Store:         st,
		DegradedCheck: mgr.Broken,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	post := func(update string) int {
		resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {update}})
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(`INSERT DATA { <http://example.org/w1> a <http://example.org/Town> }`); code != http.StatusOK {
		t.Fatalf("healthy update: status %d", code)
	}
	armEndpointFaults(t, "wal/append-write=1*torn(7)->off;wal/rollback=1*error(io)->off")
	if code := post(`INSERT DATA { <http://example.org/w2> a <http://example.org/Town> }`); code != http.StatusInternalServerError {
		t.Fatalf("update through the double fault: status %d, want 500", code)
	}
	// The WAL is now latched broken: honest 503s, not silent data loss.
	if code := post(`INSERT DATA { <http://example.org/w3> a <http://example.org/Town> }`); code != http.StatusServiceUnavailable {
		t.Fatalf("update on broken wal: status %d, want 503", code)
	}
	if resp, body := get(t, ts.URL, `ASK WHERE { <http://example.org/w1> a <http://example.org/Town> }`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("read on broken wal: status %d, body %s", resp.StatusCode, body)
	}
	if st := admissionStats(t, ts.URL); !st.Degraded || st.DegradedDenials < 1 {
		t.Fatalf("admission stats = %+v, want degraded", st)
	}
}

// TestSerializerFaultTruncatesOneResponse: an injected serializer
// failure truncates that one response (the status line is already gone,
// so dropping the connection is all the server can do) and nothing
// else — the next request serialises fully.
func TestSerializerFaultTruncatesOneResponse(t *testing.T) {
	_, ts := newTestServer(t, nil)
	armEndpointFaults(t, "endpoint/serialize=1*error(encoder exploded)->off")

	resp, body := get(t, ts.URL, townQuery, nil)
	if len(body) != 0 {
		t.Fatalf("faulted response carried %d bytes: %s", len(body), body)
	}
	_ = resp
	if faults.Hits("endpoint/serialize") < 1 {
		t.Fatal("serializer failpoint never hit")
	}
	resp, body = get(t, ts.URL, townQuery, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "athens") {
		t.Fatalf("follow-up request: status %d, body %s", resp.StatusCode, body)
	}
}

// TestClientDisconnectMidEvaluation: a client that hangs up while its
// query is evaluating must not wedge the worker or the server — the
// abandoned evaluation finishes into the void and the pool keeps
// serving. The package's leakcheck TestMain proves nothing lingers.
func TestClientDisconnectMidEvaluation(t *testing.T) {
	st, eng := fixture()
	gate := make(chan struct{})
	srv, err := NewServer(Config{
		Engine:         &slowEngine{inner: eng, gate: gate},
		Store:          st,
		MaxConcurrency: 1,
		QueryTimeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/sparql?query="+url.QueryEscape(`SELECT ?t WHERE { ?t a <http://example.org/Gone> }`), nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for srv.pool.Stats().Submitted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the pool")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("disconnected request reported success")
	}
	close(gate) // the abandoned evaluation drains

	if resp, body := get(t, ts.URL, townQuery, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after disconnect: status %d, body %s", resp.StatusCode, body)
	}
}

// TestClientDisconnectMidSerialization: the client vanishes while the
// serializer is mid-stream (latency injected at the top of writeResult);
// the write error is swallowed, the connection dropped, and the server
// keeps answering.
func TestClientDisconnectMidSerialization(t *testing.T) {
	_, ts := newTestServer(t, nil)
	armEndpointFaults(t, "endpoint/serialize=1*sleep(300ms)->off")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/sparql?query="+url.QueryEscape(townQuery), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Fatal("request should have been cut off mid-serialization")
	}
	if faults.Hits("endpoint/serialize") < 1 {
		t.Fatal("serializer failpoint never hit")
	}
	if resp, body := get(t, ts.URL, townQuery, nil); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "athens") {
		t.Fatalf("request after disconnect: status %d, body %s", resp.StatusCode, body)
	}
}

// Unit coverage for the Retry-After arithmetic and shed thresholds —
// the pieces the HTTP tests can only observe indirectly.

func TestRetryAfterMath(t *testing.T) {
	a := newAdmission(Config{})
	if got := a.retryAfter(PoolStats{Workers: 4, Queued: 10}); got != 1 {
		t.Fatalf("no latency observed: hint %d, want the floor 1", got)
	}
	a.observe(2 * time.Second) // first sample seeds the EWMA directly
	// 3 queued + this one, 2s each, 2 workers: ceil(4*2000/2/1000) = 4s.
	if got := a.retryAfter(PoolStats{Workers: 2, Queued: 3}); got != 4 {
		t.Fatalf("hint = %d, want 4", got)
	}
	// A huge backlog clamps to the 60s ceiling.
	if got := a.retryAfter(PoolStats{Workers: 1, Queued: 1000}); got != 60 {
		t.Fatalf("clamped hint = %d, want 60", got)
	}
	// Fast queries floor at 1 second rather than promising "0".
	b := newAdmission(Config{})
	b.observe(3 * time.Millisecond)
	if got := b.retryAfter(PoolStats{Workers: 8, Queued: 0}); got != 1 {
		t.Fatalf("fast-query hint = %d, want 1", got)
	}
}

func TestEWMATracksLatency(t *testing.T) {
	a := newAdmission(Config{})
	a.observe(100 * time.Millisecond)
	if got := a.meanMs(); got != 100 {
		t.Fatalf("seed mean = %v, want 100", got)
	}
	a.observe(200 * time.Millisecond)
	if got := a.meanMs(); got != 120 { // 100 + 0.2*(200-100)
		t.Fatalf("mean after second sample = %v, want 120", got)
	}
}

func TestShedThresholds(t *testing.T) {
	full := newAdmission(Config{}) // watermark defaults to 1.0
	if full.shouldShed(PoolStats{QueueCap: 4, Queued: 3}) {
		t.Fatal("shed below a full queue at watermark 1.0")
	}
	if !full.shouldShed(PoolStats{QueueCap: 4, Queued: 4}) {
		t.Fatal("no shed at a full queue")
	}
	half := newAdmission(Config{ShedWatermark: 0.5})
	if half.shouldShed(PoolStats{QueueCap: 4, Queued: 1}) {
		t.Fatal("shed below the 0.5 watermark")
	}
	if !half.shouldShed(PoolStats{QueueCap: 4, Queued: 2}) {
		t.Fatal("no shed at the 0.5 watermark")
	}
	// An unbuffered pool relies on the pool's own handoff rejection.
	if half.shouldShed(PoolStats{QueueCap: 0, Queued: 0}) {
		t.Fatal("shed with no queue to measure")
	}
}

func TestClientKeying(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/sparql", nil)
	req.RemoteAddr = "192.0.2.7:49152"
	if got := clientKey(req); got != "addr:192.0.2.7" {
		t.Fatalf("addr key = %q", got)
	}
	req.Header.Set(TenantHeader, "noa-fire-monitoring")
	if got := clientKey(req); got != "tenant:noa-fire-monitoring" {
		t.Fatalf("tenant key = %q", got)
	}
}
