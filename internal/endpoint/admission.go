package endpoint

import (
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// TenantHeader names the requesting client for per-client rate
// limiting. Absent the header, the client's remote IP is the key.
const TenantHeader = "Teleios-Tenant"

// admission is the endpoint's overload-protection front door: it
// enforces per-client rate limits, sheds load when the queue runs hot,
// and turns the observed mean query latency into honest Retry-After
// hints instead of a hardcoded "1".
type admission struct {
	limiter   *resilience.PerKey // nil: rate limiting disabled
	rateLimit float64
	watermark float64 // shed when queued >= ceil(watermark*queueCap)

	latMu  sync.Mutex
	ewmaMs float64 // exponentially weighted mean query latency

	shed            atomic.Uint64
	rateLimited     atomic.Uint64
	degradedDenials atomic.Uint64
}

func newAdmission(cfg Config) *admission {
	a := &admission{rateLimit: cfg.RateLimit, watermark: cfg.ShedWatermark}
	if a.watermark <= 0 || a.watermark > 1 {
		a.watermark = 1
	}
	if cfg.RateLimit > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(math.Ceil(2 * cfg.RateLimit))
		}
		maxClients := cfg.MaxClients
		if maxClients <= 0 {
			maxClients = 4096
		}
		a.limiter = resilience.NewPerKey(cfg.RateLimit, burst, maxClients)
	}
	return a
}

// clientKey identifies the requester: the Teleios-Tenant header when
// present, else the remote IP (without the ephemeral port, so one
// client's connections share a bucket).
func clientKey(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return "tenant:" + t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// admitClient checks the per-client rate limit. On refusal it returns
// ok=false and the whole-second Retry-After hint.
func (a *admission) admitClient(r *http.Request) (ok bool, retryAfter int) {
	if a.limiter == nil {
		return true, 0
	}
	ok, wait := a.limiter.Take(clientKey(r))
	if ok {
		return true, 0
	}
	a.rateLimited.Add(1)
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return false, secs
}

// shouldShed reports whether the queue is past the shed watermark:
// with watermark w and queue capacity c, admission stops once w*c
// requests are already waiting — before the pool starts rejecting,
// when w < 1. An unbuffered pool (c == 0) relies on the pool's own
// immediate-handoff rejection.
func (a *admission) shouldShed(ps PoolStats) bool {
	if ps.QueueCap <= 0 {
		return false
	}
	limit := int(math.Ceil(a.watermark * float64(ps.QueueCap)))
	return ps.Queued >= limit
}

// observe feeds one completed evaluation's wall time into the latency
// EWMA that Retry-After hints are computed from.
func (a *admission) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	a.latMu.Lock()
	if a.ewmaMs == 0 {
		a.ewmaMs = ms
	} else {
		const alpha = 0.2
		a.ewmaMs += alpha * (ms - a.ewmaMs)
	}
	a.latMu.Unlock()
}

func (a *admission) meanMs() float64 {
	a.latMu.Lock()
	defer a.latMu.Unlock()
	return a.ewmaMs
}

// retryAfter estimates, in whole seconds, how long until a newly
// arriving query would get a worker: the queued work ahead of it plus
// itself, at the observed mean latency, spread across the workers.
// Clamped to [1, 60] so the hint is always actionable.
func (a *admission) retryAfter(ps PoolStats) int {
	workers := ps.Workers
	if workers < 1 {
		workers = 1
	}
	mean := a.meanMs()
	if mean <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(ps.Queued+1) * mean / float64(workers) / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// AdmissionStats is the overload-protection telemetry block in /stats.
type AdmissionStats struct {
	RateLimitPerSec float64 `json:"rate_limit_per_sec,omitempty"`
	ShedWatermark   float64 `json:"shed_watermark"`
	Shed            uint64  `json:"shed"`
	RateLimited     uint64  `json:"rate_limited"`
	Degraded        bool    `json:"degraded"`
	DegradedError   string  `json:"degraded_error,omitempty"`
	DegradedDenials uint64  `json:"degraded_denials"`
	MeanQueryMs     float64 `json:"mean_query_ms"`
	RetryAfterHintS int     `json:"retry_after_hint_s"`
	Clients         int     `json:"clients"`
	ClientsEvicted  uint64  `json:"clients_evicted"`
}

func (a *admission) stats(ps PoolStats, degraded error) AdmissionStats {
	st := AdmissionStats{
		RateLimitPerSec: a.rateLimit,
		ShedWatermark:   a.watermark,
		Shed:            a.shed.Load(),
		RateLimited:     a.rateLimited.Load(),
		DegradedDenials: a.degradedDenials.Load(),
		MeanQueryMs:     math.Round(a.meanMs()*1000) / 1000,
		RetryAfterHintS: a.retryAfter(ps),
	}
	if degraded != nil {
		st.Degraded = true
		st.DegradedError = degraded.Error()
	}
	if a.limiter != nil {
		st.Clients = a.limiter.Len()
		st.ClientsEvicted = a.limiter.Evicted()
	}
	return st
}
