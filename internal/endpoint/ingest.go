package endpoint

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/rdf"
	"repro/internal/replication"
	"repro/internal/strdf"
)

// The streaming bulk-ingest front door. POST /ingest accepts an
// N-Triples stream of any length (chunked transfer encoding welcome)
// and loads it through the store in pipelined chunks: a decoder
// goroutine parses lines and pre-warms the spatial-literal intern cache
// while the handler applies the previous chunk, so WKT parsing — the
// expensive part of ingesting stRDF observations — runs off the store
// lock. Each chunk commits through one AddAll, i.e. one journal record
// riding the group committer; concurrent ingest streams and the
// background fsync all share batches, which is what lets a continuous
// observation feed (the NOA fire-monitoring profile) sustain
// acked-durable throughput.
//
// Consistency contract: each chunk is atomic in the journal (one
// record: it replays entirely or not at all), and the stream holds the
// update lock in READ mode — so SPARQL UPDATE statements (write mode)
// are fully excluded, while queries and other ingest streams proceed
// concurrently. A concurrent read may therefore observe a prefix of an
// in-flight stream; bulk feeds that need read isolation should quiesce
// readers or use SPARQL INSERT DATA.
//
// The response reports {"received", "added", "batches"} — added <
// received means duplicates were deduplicated, not lost — plus the
// Teleios-Applied-Seq read-your-writes watermark.

// defaultIngestMaxChunk bounds triples per AddAll batch when
// Config.IngestMaxChunk is unset: big enough to amortise the store
// lock and journal record overhead, small enough to keep the decode
// pipeline's memory footprint and per-chunk latency modest.
const defaultIngestMaxChunk = 8192

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "ingest requires POST", http.StatusMethodNotAllowed)
		return
	}
	if ok, retry := s.adm.admitClient(r); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, "rate limit exceeded for this client; slow down", http.StatusTooManyRequests)
		return
	}
	if s.cfg.ReadOnly {
		msg := s.cfg.ReadOnlyMessage
		if msg == "" {
			msg = "endpoint is read-only"
		}
		http.Error(w, msg, http.StatusForbidden)
		return
	}
	if s.cfg.Store == nil {
		http.Error(w, "ingest requires a store-backed endpoint", http.StatusServiceUnavailable)
		return
	}
	if jerr := s.degradedErr(); jerr != nil {
		s.adm.degradedDenials.Add(1)
		w.Header().Set("Retry-After", "60")
		http.Error(w, fmt.Sprintf(
			"endpoint is in degraded read-only mode: the write-ahead journal failed (%v); "+
				"reads continue to be served, writes are refused until the data directory recovers and the server restarts", jerr),
			http.StatusServiceUnavailable)
		return
	}

	chunkSize := s.cfg.IngestMaxChunk
	if chunkSize <= 0 {
		chunkSize = defaultIngestMaxChunk
	}

	// The decode half of the pipeline. It owns the request body; the
	// handler below applies chunks as they arrive, so chunk N+1 parses
	// while chunk N commits. done lets the handler abandon the stream
	// (veto, broken WAL) without leaking the goroutine mid-send.
	type chunk struct {
		triples []rdf.Triple
		lines   int
	}
	chunks := make(chan chunk, 2)
	done := make(chan struct{})
	// On early exit (journal veto) the decoder may be mid-parse or
	// parked on a send; it must not outlive this handler, because it
	// reads r.Body, which net/http reclaims when we return. LIFO defers:
	// close(done) unparks it, then the drain loop waits for it to close
	// chunks on its way out.
	defer func() {
		for range chunks {
		}
	}()
	defer close(done)
	var decErr error // owned by the decoder; read only after chunks closes
	go func() {
		defer close(chunks)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		lineNo := 0
		batch := make([]rdf.Triple, 0, chunkSize)
		batchLines := 0
		send := func() bool {
			select {
			case chunks <- chunk{triples: batch, lines: batchLines}:
				batch = make([]rdf.Triple, 0, chunkSize)
				batchLines = 0
				return true
			case <-done:
				return false
			}
		}
		for sc.Scan() {
			lineNo++
			if ferr := faults.Eval("endpoint/ingest-read"); ferr != nil {
				decErr = fmt.Errorf("reading ingest stream at line %d: %w", lineNo, ferr)
				return
			}
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			t, err := rdf.ParseTripleLine(line)
			if err != nil {
				decErr = fmt.Errorf("line %d: %v", lineNo, err)
				return
			}
			if t.O.IsSpatial() {
				// Pre-warm the WKT intern cache so the store's add path
				// (under its write lock) finds the geometry already
				// parsed. A malformed literal is not an ingest error —
				// the store simply indexes it without a geometry, same
				// as every other load path.
				strdf.ParseSpatial(t.O)
			}
			batch = append(batch, t)
			batchLines++
			if len(batch) >= chunkSize {
				if !send() {
					return
				}
			}
		}
		if err := sc.Err(); err != nil {
			decErr = fmt.Errorf("reading ingest stream at line %d: %v", lineNo, err)
			return
		}
		if len(batch) > 0 {
			send()
		}
	}()

	var received, added, batches int
	for c := range chunks {
		received += len(c.triples)
		s.updateMu.RLock()
		vetoes := s.cfg.Store.JournalVetoes()
		n := s.cfg.Store.AddAll(c.triples)
		vetoed := s.cfg.Store.JournalVetoes() != vetoes
		s.updateMu.RUnlock()
		if vetoed {
			// The journal refused the chunk: nothing from it is durable.
			// Chunks before it are; re-sending the whole stream is safe
			// (Add is a set operation) once the cause clears.
			http.Error(w, fmt.Sprintf(
				"ingest rejected by the write-ahead journal after %d triples (%d committed chunks): %v",
				added, batches, s.cfg.Store.JournalErr()),
				http.StatusInternalServerError)
			return
		}
		added += n
		batches++
	}
	if decErr != nil {
		http.Error(w, fmt.Sprintf(
			"ingest aborted after %d triples (%d committed chunks): %v",
			added, batches, decErr),
			http.StatusBadRequest)
		return
	}
	w.Header().Set(replication.HeaderAppliedSeq, strconv.FormatUint(s.cfg.Store.AppliedSeq(), 10))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"received\":%d,\"added\":%d,\"batches\":%d}\n", received, added, batches)
}
