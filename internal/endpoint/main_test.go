package endpoint

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain verifies no test leaves goroutines behind — the endpoint's
// pool workers, timed-out evaluations and dropped-client serializations
// must all unwind.
func TestMain(m *testing.M) { leakcheck.Main(m) }
