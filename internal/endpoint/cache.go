package endpoint

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/stsparql"
)

// CacheVersion is the store-state fingerprint that keys cached
// results. Version counts every in-process mutation (including ones
// that never touch the WAL, like toggling the spatial index);
// AppliedSeq is the replication watermark — the newest WAL sequence
// number whose mutation is visible. Both are needed: Version alone is
// not comparable across processes (a replica restored from a snapshot
// skips replayed no-ops, so its counter drifts from the primary's),
// and AppliedSeq alone misses non-journalled mutations.
type CacheVersion struct {
	Version    uint64
	AppliedSeq uint64
}

// ResultCache is an LRU cache of evaluated read-query results keyed by
// query text and store state (CacheVersion). A cached entry is valid
// only while the store's fingerprint is unchanged; entries from older
// states are evicted lazily on lookup, so a single UPDATE invalidates
// the whole cache without any bookkeeping on the write path.
type ResultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	key     string
	version CacheVersion
	res     *stsparql.Result
}

// NewResultCache returns a cache holding at most capacity results; a
// capacity < 1 disables caching (Get always misses, Put is a no-op).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		cap:   capacity,
		ll:    list.New(),
		items: map[string]*list.Element{},
	}
}

// Get returns the cached result for key at the given store version.
func (c *ResultCache) Get(key string, version CacheVersion) (*stsparql.Result, bool) {
	if c.cap < 1 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.version != version {
		// Stale: the store mutated since this was cached.
		c.ll.Remove(el)
		delete(c.items, key)
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return ent.res, true
}

// Put stores a result for key at the given store version, evicting the
// least recently used entry when over capacity.
func (c *ResultCache) Put(key string, version CacheVersion, res *stsparql.Result) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.version = version
		ent.res = res
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, version: version, res: res})
	c.items[key] = el
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a snapshot of cache counters.
type CacheStats struct {
	Capacity int    `json:"capacity"`
	Entries  int    `json:"entries"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// Stats returns a snapshot of the cache's counters.
func (c *ResultCache) Stats() CacheStats {
	return CacheStats{
		Capacity: c.cap,
		Entries:  c.Len(),
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
	}
}
