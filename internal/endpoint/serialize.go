package endpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/rdf"
	"repro/internal/strdf"
	"repro/internal/stsparql"
)

// Format identifies a negotiated result serialisation.
type Format int

// Supported result formats.
const (
	FormatJSON     Format = iota + 1 // SPARQL 1.1 Query Results JSON
	FormatCSV                        // SPARQL 1.1 Query Results CSV
	FormatTSV                        // SPARQL 1.1 Query Results TSV
	FormatGeoJSON                    // RFC 7946 FeatureCollection
	FormatNTriples                   // N-Triples (CONSTRUCT results)
)

// ContentType returns the media type written for the format.
func (f Format) ContentType() string {
	switch f {
	case FormatJSON:
		return "application/sparql-results+json"
	case FormatCSV:
		return "text/csv; charset=utf-8"
	case FormatTSV:
		return "text/tab-separated-values; charset=utf-8"
	case FormatGeoJSON:
		return "application/geo+json"
	case FormatNTriples:
		return "application/n-triples"
	}
	return "application/octet-stream"
}

// formatByName maps the ?format= query-parameter shorthand to formats.
var formatByName = map[string]Format{
	"json":     FormatJSON,
	"csv":      FormatCSV,
	"tsv":      FormatTSV,
	"geojson":  FormatGeoJSON,
	"ntriples": FormatNTriples,
	"nt":       FormatNTriples,
}

// formatByMedia maps Accept media types to formats.
var formatByMedia = map[string]Format{
	"application/sparql-results+json": FormatJSON,
	"application/json":                FormatJSON,
	"text/csv":                        FormatCSV,
	"text/tab-separated-values":       FormatTSV,
	"application/geo+json":            FormatGeoJSON,
	"application/vnd.geo+json":        FormatGeoJSON,
	"application/n-triples":           FormatNTriples,
	"text/plain":                      FormatNTriples,
	"*/*":                             FormatJSON,
	"application/*":                   FormatJSON,
	"text/*":                          FormatCSV,
}

// compatibleWith reports whether the format can represent results of
// the query form: a graph is not a bindings table, and a boolean has no
// geometry.
func (f Format) compatibleWith(form stsparql.QueryForm) bool {
	switch form {
	case stsparql.FormConstruct:
		return f == FormatNTriples || f == FormatGeoJSON
	case stsparql.FormAsk:
		return f == FormatJSON || f == FormatCSV || f == FormatTSV
	default:
		return f != FormatNTriples
	}
}

// defaultFormat is the form's serialisation when the client expresses
// no (satisfiable) preference.
func defaultFormat(form stsparql.QueryForm) Format {
	if form == stsparql.FormConstruct {
		return FormatNTriples
	}
	return FormatJSON
}

// negotiationError carries the HTTP rejection for a failed negotiation.
type negotiationError struct {
	status  int
	message string
}

// negotiateFormat picks the response format for a query form from the
// ?format= override and the Accept header (q-values honoured, unknown
// types skipped). An unknown ?format= value is a 400; a known one
// incompatible with the form falls back to the form's default (the
// parameter is this endpoint's own shorthand, documented to do so). For
// Accept, the best compatible type wins; a wildcard entry (*/*,
// application/*, text/*) permits the form default, and a header that
// names only concrete types the form cannot be served in is a 406.
func negotiateFormat(formatParam, accept string, form stsparql.QueryForm) (Format, *negotiationError) {
	if formatParam != "" {
		f, ok := formatByName[strings.ToLower(formatParam)]
		if !ok {
			return 0, &negotiationError{http.StatusBadRequest,
				fmt.Sprintf("unsupported format %q (want json, csv, tsv, geojson, or ntriples)", formatParam)}
		}
		if !f.compatibleWith(form) {
			return defaultFormat(form), nil
		}
		return f, nil
	}
	accept = strings.TrimSpace(accept)
	if accept == "" {
		return defaultFormat(form), nil
	}
	type choice struct {
		f    Format
		q    float64
		rank int // position in the header, to break q ties
	}
	var choices []choice
	sawWildcard := false
	for i, part := range strings.Split(accept, ",") {
		fields := strings.Split(part, ";")
		media := strings.ToLower(strings.TrimSpace(fields[0]))
		q := 1.0
		for _, param := range fields[1:] {
			param = strings.TrimSpace(param)
			if v, ok := strings.CutPrefix(param, "q="); ok {
				if parsed, err := strconv.ParseFloat(v, 64); err == nil {
					q = parsed
				}
			}
		}
		if q <= 0 {
			continue
		}
		switch media {
		case "*/*", "application/*", "text/*":
			sawWildcard = true
		}
		if f, ok := formatByMedia[media]; ok {
			choices = append(choices, choice{f: f, q: q, rank: i})
		}
	}
	sort.SliceStable(choices, func(i, j int) bool {
		if choices[i].q != choices[j].q {
			return choices[i].q > choices[j].q
		}
		return choices[i].rank < choices[j].rank
	})
	for _, c := range choices {
		if c.f.compatibleWith(form) {
			return c.f, nil
		}
	}
	if sawWildcard {
		return defaultFormat(form), nil
	}
	if len(choices) == 0 {
		return 0, &negotiationError{http.StatusNotAcceptable, "no supported result format in Accept"}
	}
	return 0, &negotiationError{http.StatusNotAcceptable,
		"none of the accepted types can represent this query form's result"}
}

// geomResolver decodes a spatial literal term to a WGS84 geometry. The
// server resolves through the store's ingest-time geometry cache when it
// can, so GeoJSON serialisation does not re-parse WKT per row.
type geomResolver func(rdf.Term) (strdf.SpatialValue, error)

// parseGeomDirect is the cache-less fallback resolver. A geometry whose
// CRS cannot be reprojected is an error, not a passthrough: GeoJSON
// positions are WGS84 by definition, so emitting untransformed
// coordinates would plot the feature off-planet. Callers render such
// rows with a null geometry instead.
func parseGeomDirect(t rdf.Term) (strdf.SpatialValue, error) {
	sv, err := strdf.ParseSpatial(t)
	if err != nil {
		return sv, err
	}
	w, err := sv.ToWGS84()
	if err != nil {
		return strdf.SpatialValue{}, err
	}
	return w, nil
}

// memoResolver wraps a resolver with a per-response memo, so N rows
// projecting the same computed geometry (e.g. a strdf:buffer result the
// store has never ingested) parse it once instead of once per row. The
// memo lives for one serialisation and is used from one goroutine, so
// it needs no locking and cannot grow beyond the response's distinct
// geometries.
func memoResolver(r geomResolver) geomResolver {
	ok := map[string]strdf.SpatialValue{}
	failed := map[string]error{}
	return func(t rdf.Term) (strdf.SpatialValue, error) {
		key := t.Datatype + "\x00" + t.Value
		if v, hit := ok[key]; hit {
			return v, nil
		}
		if err, hit := failed[key]; hit {
			return strdf.SpatialValue{}, err
		}
		v, err := r(t)
		if err != nil {
			failed[key] = err
			return v, err
		}
		ok[key] = v
		return v, nil
	}
}

// writeResult serialises an evaluation result in the format negotiated
// for the query form (the form decides the result shape: bindings
// table, boolean, or graph).
func writeResult(w io.Writer, res *stsparql.Result, form stsparql.QueryForm, f Format, geom geomResolver) error {
	if err := faults.Eval("endpoint/serialize"); err != nil {
		return err
	}
	if geom == nil {
		geom = parseGeomDirect
	}
	geom = memoResolver(geom)
	switch form {
	case stsparql.FormConstruct:
		return writeConstruct(w, res.Triples, f, geom)
	case stsparql.FormAsk:
		return writeAsk(w, res, f)
	default:
		return writeSelect(w, res, f, geom)
	}
}

// --- SELECT -----------------------------------------------------------------

func writeSelect(w io.Writer, res *stsparql.Result, f Format, geom geomResolver) error {
	switch f {
	case FormatJSON:
		return writeSelectJSON(w, res)
	case FormatCSV:
		return writeSelectSV(w, res, ',')
	case FormatTSV:
		return writeSelectSV(w, res, '\t')
	case FormatGeoJSON:
		return writeSelectGeoJSON(w, res, geom)
	}
	return fmt.Errorf("endpoint: format %d cannot serialise bindings", f)
}

// termJSON renders one term per the SPARQL 1.1 Results JSON vocabulary.
func termJSON(t rdf.Term) map[string]any {
	switch t.Kind {
	case rdf.KindIRI:
		return map[string]any{"type": "uri", "value": t.Value}
	case rdf.KindBlank:
		return map[string]any{"type": "bnode", "value": t.Value}
	default:
		m := map[string]any{"type": "literal", "value": t.Value}
		if t.Lang != "" {
			m["xml:lang"] = t.Lang
		} else if t.Datatype != "" && t.Datatype != rdf.XSDString {
			m["datatype"] = t.Datatype
		}
		return m
	}
}

func writeSelectJSON(w io.Writer, res *stsparql.Result) error {
	vars := res.Vars
	if vars == nil {
		vars = []string{}
	}
	rows := make([]map[string]any, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		row := map[string]any{}
		for v, t := range b {
			row[v] = termJSON(t)
		}
		rows = append(rows, row)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"head":    map[string]any{"vars": vars},
		"results": map[string]any{"bindings": rows},
	})
}

// writeSelectSV writes the SPARQL 1.1 CSV (plain lexical values, quoted
// per RFC 4180) or TSV (N-Triples-encoded terms) serialisation, row by
// row so large result sets stream instead of doubling in memory.
func writeSelectSV(w io.Writer, res *stsparql.Result, sep byte) error {
	bw := bufio.NewWriter(w)
	for i, v := range res.Vars {
		if i > 0 {
			bw.WriteByte(sep)
		}
		if sep == '\t' {
			bw.WriteByte('?')
		}
		bw.WriteString(v)
	}
	bw.WriteString("\r\n")
	for _, b := range res.Bindings {
		for i, v := range res.Vars {
			if i > 0 {
				bw.WriteByte(sep)
			}
			t, bound := b[v]
			if !bound {
				continue
			}
			if sep == '\t' {
				bw.WriteString(t.String())
			} else {
				bw.WriteString(csvField(csvValue(t)))
			}
		}
		if _, err := bw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// csvValue renders a term the way the SPARQL CSV spec does: lexical forms
// without quoting or datatypes, IRIs bare, blank nodes with "_:".
func csvValue(t rdf.Term) string {
	switch t.Kind {
	case rdf.KindBlank:
		return "_:" + t.Value
	default:
		return t.Value
	}
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\r\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// writeSelectGeoJSON renders a bindings table as a FeatureCollection: per
// row, the first projected variable holding a parseable spatial literal
// becomes the feature geometry (reprojected to WGS84) and every other
// bound variable becomes a string property. Rows without a geometry get
// "geometry": null, so no solutions are silently dropped.
func writeSelectGeoJSON(w io.Writer, res *stsparql.Result, resolve geomResolver) error {
	features := make([]map[string]any, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		var geom map[string]any
		geomVar := ""
		for _, v := range res.Vars {
			t, bound := b[v]
			if !bound || !t.IsSpatial() {
				continue
			}
			sv, err := resolve(t)
			if err != nil {
				continue
			}
			enc, err := geoJSONGeometry(sv.Geom)
			if err != nil {
				continue
			}
			geom, geomVar = enc, v
			break
		}
		props := map[string]any{}
		for v, t := range b {
			if v == geomVar {
				continue
			}
			props[v] = csvValue(t)
		}
		features = append(features, map[string]any{
			"type":       "Feature",
			"geometry":   geom,
			"properties": props,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"type":     "FeatureCollection",
		"features": features,
	})
}

// --- ASK --------------------------------------------------------------------

func writeAsk(w io.Writer, res *stsparql.Result, f Format) error {
	switch f {
	case FormatCSV, FormatTSV:
		_, err := fmt.Fprintf(w, "%t\r\n", res.Bool)
		return err
	default:
		enc := json.NewEncoder(w)
		return enc.Encode(map[string]any{
			"head":    map[string]any{},
			"boolean": res.Bool,
		})
	}
}

// --- CONSTRUCT --------------------------------------------------------------

func writeConstruct(w io.Writer, triples []rdf.Triple, f Format, geom geomResolver) error {
	if f == FormatGeoJSON {
		return writeConstructGeoJSON(w, triples, geom)
	}
	return rdf.WriteNTriples(w, triples)
}

// writeConstructGeoJSON renders the triples whose object is a spatial
// literal as features (geometry = object, properties = subject and
// predicate); non-spatial triples are carried in the properties-only
// tail with null geometry.
func writeConstructGeoJSON(w io.Writer, triples []rdf.Triple, resolve geomResolver) error {
	features := make([]map[string]any, 0, len(triples))
	for _, t := range triples {
		var geom map[string]any
		if t.O.IsSpatial() {
			if sv, err := resolve(t.O); err == nil {
				if enc, err := geoJSONGeometry(sv.Geom); err == nil {
					geom = enc
				}
			}
		}
		props := map[string]any{
			"subject":   csvValue(t.S),
			"predicate": csvValue(t.P),
		}
		if geom == nil {
			props["object"] = csvValue(t.O)
		}
		features = append(features, map[string]any{
			"type":       "Feature",
			"geometry":   geom,
			"properties": props,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"type":     "FeatureCollection",
		"features": features,
	})
}
