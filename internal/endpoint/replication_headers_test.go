package endpoint

import (
	"io"
	"net/http"
	"net/url"
	"strconv"
	"testing"

	"repro/internal/rdf"
)

// journalOn attaches a seq-advancing journal to the test server's store
// so the applied-seq watermark actually moves, the way it does on a
// durable primary. Returns the journal for seq inspection.
func journalOn(srv *Server) *vetoJournal {
	j := &vetoJournal{}
	srv.cfg.Store.SetJournal(j)
	return j
}

// TestReadCarriesAppliedSeq: every read response advertises the
// watermark it was evaluated at — the token a client hands to
// Teleios-Min-Version for read-your-writes on a replica.
func TestReadCarriesAppliedSeq(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	j := journalOn(srv)
	srv.cfg.Store.Add(rdf.NewTriple(rdf.IRI(exNS+"x"), rdf.IRI(exNS+"p"), rdf.Literal("v")))

	resp, _ := get(t, ts.URL, townQuery, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := resp.Header.Get("Teleios-Applied-Seq")
	if got != strconv.FormatUint(j.seq, 10) {
		t.Fatalf("Teleios-Applied-Seq = %q, want %d", got, j.seq)
	}
}

// TestUpdateResponseCarriesWatermark: an acked update's response header
// is the exact watermark the client must demand to read its own write.
func TestUpdateResponseCarriesWatermark(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	journalOn(srv)

	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {
		`INSERT DATA { <http://example.org/new> <http://example.org/p> "w" }`,
	}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	hdr := resp.Header.Get("Teleios-Applied-Seq")
	want := srv.cfg.Store.AppliedSeq()
	if want == 0 {
		t.Fatal("journalled update left the watermark at 0")
	}
	if hdr != strconv.FormatUint(want, 10) {
		t.Fatalf("update Teleios-Applied-Seq = %q, want %d", hdr, want)
	}
}

// TestMinVersionBackstop: a read demanding a watermark this server has
// not reached is refused with 503 + Retry-After rather than silently
// served stale; a satisfied demand is served; garbage is the client's
// bug (400).
func TestMinVersionBackstop(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	journalOn(srv)
	srv.cfg.Store.Add(rdf.NewTriple(rdf.IRI(exNS+"x"), rdf.IRI(exNS+"p"), rdf.Literal("v")))
	at := srv.cfg.Store.AppliedSeq()

	resp, _ := get(t, ts.URL, townQuery, http.Header{
		"Teleios-Min-Version": {strconv.FormatUint(at, 10)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("satisfied watermark: status %d", resp.StatusCode)
	}

	resp, body := get(t, ts.URL, townQuery, http.Header{
		"Teleios-Min-Version": {strconv.FormatUint(at+100, 10)},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsatisfied watermark: status %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if resp.Header.Get("Teleios-Applied-Seq") != strconv.FormatUint(at, 10) {
		t.Fatalf("503 should report the current watermark, got %q",
			resp.Header.Get("Teleios-Applied-Seq"))
	}

	resp, _ = get(t, ts.URL, townQuery, http.Header{"Teleios-Min-Version": {"not-a-number"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage watermark: status %d, want 400", resp.StatusCode)
	}
}

// TestETagRevalidation: the ETag is a strong validator over (query,
// version, applied-seq, format) — If-None-Match short-circuits to 304
// until ANY write lands, including one that leaves Version-visible
// structure alone but moves the watermark.
func TestETagRevalidation(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	journalOn(srv)

	resp, _ := get(t, ts.URL, townQuery, nil)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("read response has no ETag")
	}

	resp, body := get(t, ts.URL, townQuery, http.Header{"If-None-Match": {etag}})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status %d, body %s", resp.StatusCode, body)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried a body: %q", body)
	}

	// Wildcard and a list containing the ETag must also match.
	for _, inm := range []string{"*", `"zzz", ` + etag, "W/" + etag} {
		resp, _ = get(t, ts.URL, townQuery, http.Header{"If-None-Match": {inm}})
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
	}

	// A write invalidates: same If-None-Match now misses.
	srv.cfg.Store.Add(rdf.NewTriple(rdf.IRI(exNS+"y"), rdf.IRI(exNS+"p"), rdf.Literal("v2")))
	resp, _ = get(t, ts.URL, townQuery, http.Header{"If-None-Match": {etag}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match after write: status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == etag {
		t.Fatal("ETag unchanged across a write")
	}
}

// TestETagVariesByFormat: the validator covers the negotiated format —
// a JSON 304 must never be served against a CSV cache entry.
func TestETagVariesByFormat(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	journalOn(srv)

	respJSON, _ := get(t, ts.URL, townQuery, http.Header{"Accept": {"application/sparql-results+json"}})
	respCSV, _ := get(t, ts.URL, townQuery, http.Header{"Accept": {"text/csv"}})
	j, c := respJSON.Header.Get("ETag"), respCSV.Header.Get("ETag")
	if j == "" || c == "" || j == c {
		t.Fatalf("format-blind ETags: json=%q csv=%q", j, c)
	}
}
