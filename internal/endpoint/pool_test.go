package endpoint

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/stsparql"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 16)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	// Submit waits for completion, so each goroutine holds at most one
	// job in flight: 8 submitters can never exceed workers+queue and no
	// submission is rejected.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := p.Submit(context.Background(), func() { n.Add(1) }); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if n.Load() != 200 {
		t.Fatalf("ran %d jobs, want 200", n.Load())
	}
	if s := p.Stats(); s.Submitted != 200 || s.Rejected != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPoolRejectsWhenFull(t *testing.T) {
	p := NewPool(1, 0)
	defer p.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		// Depth 0 means an unbuffered handoff: the submission itself is
		// rejected unless the worker is already parked on the channel,
		// so retry until it lands.
		for {
			err := p.Submit(context.Background(), func() {
				close(started)
				<-gate
			})
			if err != ErrOverloaded {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-started
	// Worker busy, queue depth 0: submission must bounce immediately.
	if err := p.Submit(context.Background(), func() {}); err != ErrOverloaded {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	close(gate)
}

func TestPoolAbandonsTimedOutQueuedJobs(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func() {
		close(started)
		<-gate
	})
	<-started
	// This job sits in the queue past its deadline; the worker must skip
	// its fn once the gate opens.
	ran := false
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := p.Submit(ctx, func() { ran = true })
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	close(gate)
	p.Close() // drains the queue
	if ran {
		t.Fatal("abandoned job still ran")
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	p.Close() // idempotent
	if err := p.Submit(context.Background(), func() {}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestResultCacheVersioningAndLRU(t *testing.T) {
	c := NewResultCache(2)
	r1 := &stsparql.Result{Bool: true}
	r2 := &stsparql.Result{Bool: false}
	v1 := CacheVersion{Version: 1, AppliedSeq: 1}
	v2 := CacheVersion{Version: 2, AppliedSeq: 1}
	// Same Version but a moved AppliedSeq must also miss: on a replica,
	// replicated writes move only the watermark half of the fingerprint.
	v1seq2 := CacheVersion{Version: 1, AppliedSeq: 2}
	c.Put("q1", v1, r1)
	if got, ok := c.Get("q1", v1); !ok || got != r1 {
		t.Fatal("expected hit at matching version")
	}
	if _, ok := c.Get("q1", v1seq2); ok {
		t.Fatal("stale applied-seq must miss")
	}
	if c.Len() != 0 {
		t.Fatal("stale entry must be evicted on lookup")
	}
	// LRU order: touch q1 so q2 is the eviction victim.
	c.Put("q1", v2, r1)
	c.Put("q2", v2, r2)
	c.Get("q1", v2)
	c.Put("q3", v2, r1)
	if _, ok := c.Get("q2", v2); ok {
		t.Fatal("q2 should have been evicted")
	}
	if _, ok := c.Get("q1", v2); !ok {
		t.Fatal("q1 should have survived")
	}
	if s := c.Stats(); s.Capacity != 2 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := NewResultCache(-1)
	c.Put("q", CacheVersion{Version: 1}, &stsparql.Result{})
	if _, ok := c.Get("q", CacheVersion{Version: 1}); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestGeoJSONGeometryShapes(t *testing.T) {
	poly := geo.NewPolygon(
		geo.NewRing(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0}, geo.Point{X: 10, Y: 10}, geo.Point{X: 0, Y: 10}),
		geo.NewRing(geo.Point{X: 4, Y: 4}, geo.Point{X: 6, Y: 4}, geo.Point{X: 6, Y: 6}, geo.Point{X: 4, Y: 6}),
	)
	enc, err := geoJSONGeometry(poly)
	if err != nil {
		t.Fatal(err)
	}
	if enc["type"] != "Polygon" {
		t.Fatalf("type = %v", enc["type"])
	}
	rings := enc["coordinates"].([][][2]float64)
	if len(rings) != 2 {
		t.Fatalf("got %d rings, want exterior + hole", len(rings))
	}
	if rings[0][0] != rings[0][len(rings[0])-1] {
		t.Fatal("exterior ring is not closed")
	}
	line := geo.NewLineString(geo.Point{X: 1, Y: 2}, geo.Point{X: 3, Y: 4})
	enc, err = geoJSONGeometry(geo.GeometryCollection{Geometries: []geo.Geometry{line, geo.Point{X: 5, Y: 6}}})
	if err != nil {
		t.Fatal(err)
	}
	members := enc["geometries"].([]map[string]any)
	if len(members) != 2 || members[0]["type"] != "LineString" || members[1]["type"] != "Point" {
		t.Fatalf("collection = %v", enc)
	}
	mp := geo.MultiPolygon{Polygons: []geo.Polygon{poly, geo.Rect(20, 20, 30, 30)}}
	enc, err = geoJSONGeometry(mp)
	if err != nil {
		t.Fatal(err)
	}
	if polys := enc["coordinates"].([][][][2]float64); len(polys) != 2 {
		t.Fatalf("multipolygon members = %d", len(polys))
	}
}
