package teleios

// The benchmark harness regenerates every experiment in DESIGN.md §4.
// The paper (a demo paper) publishes no measured tables; these benchmarks
// reproduce its three figures as executable artefacts, its two demo
// scenarios as measured runs, the Section 1 flagship query, and three
// ablations of the design choices DESIGN.md calls out. EXPERIMENTS.md
// records the measured numbers and the expected shapes.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/column"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/kdd"
	"repro/internal/linkeddata"
	"repro/internal/noa"
	"repro/internal/raster"
	"repro/internal/rdf"
	"repro/internal/scene"
	"repro/internal/strabon"
	"repro/internal/strdf"
	"repro/internal/stsparql"
	"repro/internal/vault"
)

// frameCache shares generated frames across benchmarks (generation cost
// must not pollute the measurements).
var (
	frameMu    sync.Mutex
	frameCache = map[string][]*raster.Frame{}
)

func cachedFrames(width, steps int) []*raster.Frame {
	frameMu.Lock()
	defer frameMu.Unlock()
	key := fmt.Sprintf("%dx%d", width, steps)
	if fs, ok := frameCache[key]; ok {
		return fs
	}
	fs := raster.Generate(raster.GenOptions{Width: width, Height: width, Steps: steps})
	frameCache[key] = fs
	return fs
}

// F1 — Figure 1, the concept pipeline: raw data -> content extraction ->
// knowledge discovery -> semantic annotation -> linked data store.
func BenchmarkFigure1Pipeline(b *testing.B) {
	f := cachedFrames(128, 6)[5]
	model := kdd.TrainLandCoverModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := f.Band(raster.BandIR39)
		if err != nil {
			b.Fatal(err)
		}
		anns, err := kdd.AnnotatePatches("http://ex/p", img, f.GeoRef, 16, model, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		st := strabon.NewStore()
		st.AddAll(ingest.ExtractMetadata(f))
		for k, a := range anns {
			st.AddAll(a.Triples(k))
		}
		if st.Len() == 0 {
			b.Fatal("empty store")
		}
		b.ReportMetric(float64(len(anns)), "annotations")
	}
}

// F2 — Figure 2, an end-to-end request across all four tiers: chain ->
// store -> refinement -> fire map.
func BenchmarkFigure2EndToEnd(b *testing.B) {
	f := cachedFrames(128, 6)[5]
	chain := noa.DefaultChain(scene.Region)
	aux := linkeddata.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := chain.Run(f)
		if err != nil {
			b.Fatal(err)
		}
		eng := stsparql.New(strabon.NewStore())
		noa.StoreProduct(eng, p)
		eng.Store().AddAll(aux)
		if _, err := noa.Refine(eng); err != nil {
			b.Fatal(err)
		}
		m, err := noa.BuildFireMap(eng, 30000)
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Features) == 0 {
			b.Fatal("empty map")
		}
	}
}

// F3 — Figure 3, the Earth Observatory GUI's catalogue search: a mixed
// metadata + spatial query over catalogues of growing size.
func BenchmarkFigure3CatalogueSearch(b *testing.B) {
	for _, nProducts := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("products=%d", nProducts), func(b *testing.B) {
			st := strabon.NewStore()
			frames := cachedFrames(32, 1)
			for i := 0; i < nProducts; i++ {
				f := *frames[0]
				f.ID = fmt.Sprintf("MSG2-SYN-%04d", i)
				f.Time = f.Time.Add(time.Duration(i) * 15 * time.Minute)
				st.AddAll(ingest.ExtractMetadata(&f))
			}
			eng := stsparql.New(st)
			query := `
				PREFIX noa: <http://teleios.di.uoa.gr/noa#>
				PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
				SELECT ?img ?t WHERE {
					?img a noa:Product .
					?img noa:satellite "Meteosat-9" .
					?img noa:acquiredAt ?t .
					?img noa:coverage ?cov .
					FILTER(strdf:intersects(?cov, "POLYGON ((22 37, 25 37, 25 39, 22 39, 22 37))"^^strdf:WKT))
				} ORDER BY ?t LIMIT 20`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Bindings) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// S1 — Scenario 1, the NOA processing chain per grid size; per-stage
// timings are reported as metrics.
func BenchmarkScenario1Chain(b *testing.B) {
	for _, size := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("grid=%d", size), func(b *testing.B) {
			f := cachedFrames(size, 6)[5]
			chain := noa.DefaultChain(scene.Region)
			var nHot int
			stages := map[string]float64{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := chain.Run(f)
				if err != nil {
					b.Fatal(err)
				}
				nHot = len(p.Hotspots)
				for s, d := range p.Timings {
					stages[s] += d.Seconds()
				}
			}
			b.ReportMetric(float64(nHot), "hotspots")
			for s, total := range stages {
				b.ReportMetric(total/float64(b.N)*1e3, s+"-ms")
			}
		})
	}
}

// S2 — Scenario 2, the thematic refinement: runtime plus the accuracy
// deltas (false positives removed, real fires kept).
func BenchmarkScenario2Refinement(b *testing.B) {
	f := cachedFrames(128, 6)[5]
	chain := noa.DefaultChain(scene.Region)
	p, err := chain.Run(f)
	if err != nil {
		b.Fatal(err)
	}
	aux := linkeddata.All()
	land := scene.Landmass()
	b.ResetTimer()
	var rejected, clipped, fpBefore, fpAfter int
	for i := 0; i < b.N; i++ {
		eng := stsparql.New(strabon.NewStore())
		noa.StoreProduct(eng, p)
		eng.Store().AddAll(aux)
		fpBefore = countSeaHotspots(b, eng, land)
		stats, err := noa.Refine(eng)
		if err != nil {
			b.Fatal(err)
		}
		rejected, clipped = stats.Rejected, stats.Clipped
		fpAfter = countSeaHotspots(b, eng, land)
	}
	b.ReportMetric(float64(rejected), "rejected")
	b.ReportMetric(float64(clipped), "clipped")
	b.ReportMetric(float64(fpBefore), "sea-fp-before")
	b.ReportMetric(float64(fpAfter), "sea-fp-after")
}

func countSeaHotspots(b *testing.B, eng *stsparql.Engine, land geo.Geometry) int {
	b.Helper()
	geoms, err := noa.QueryHotspotGeometries(eng)
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	for _, g := range geoms {
		v, err := strdf.ParseSpatial(g)
		if err != nil {
			continue
		}
		if geo.Disjoint(v.Geom, land) {
			n++
		}
	}
	return n
}

// Q1 — the Section 1 flagship query, sweeping the number of
// archaeological sites joined against.
func BenchmarkFlagshipQuery(b *testing.B) {
	for _, nSites := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("sites=%d", nSites), func(b *testing.B) {
			eng := flagshipFixture(b, nSites, true)
			query := flagshipQueryText()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Bindings) == 0 {
					b.Fatal("flagship query found nothing")
				}
			}
		})
	}
}

func flagshipFixture(b *testing.B, nSites int, spatialIndex bool) *stsparql.Engine {
	b.Helper()
	f := cachedFrames(128, 6)[5]
	chain := noa.DefaultChain(scene.Region)
	p, err := chain.Run(f)
	if err != nil {
		b.Fatal(err)
	}
	st := strabon.NewStore()
	st.SetSpatialIndexEnabled(spatialIndex)
	eng := stsparql.New(st)
	noa.StoreProduct(eng, p)
	st.AddAll(ingest.ExtractMetadata(f))
	st.AddAll(linkeddata.All())
	st.AddAll(linkeddata.SyntheticSites(nSites))
	return eng
}

func flagshipQueryText() string {
	return `
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		PREFIX gn: <http://sws.geonames.org/teleios/>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT DISTINCT ?img ?site WHERE {
			?img a noa:Product .
			?h a mon:Hotspot .
			?h noa:derivedFromProduct ?img .
			?h noa:hasGeometry ?hg .
			?site a gn:ArchaeologicalSite .
			?site noa:hasGeometry ?sg .
			FILTER(strdf:distance(?hg, ?sg) < 2000)
		}`
}

// Q2 — the morsel-parallelism cores ablation: multi-pattern queries
// (the flagship hotspot×site join with its distance filter, and a wide
// catalogue search with a spatial filter) at a per-query worker bound of
// 1, 2, 4 and GOMAXPROCS. The shared slot-budget pool still caps real
// concurrency at GOMAXPROCS-1 extra goroutines, so the >1 worker runs
// only beat serial on multi-core hardware.
func BenchmarkParallelQueryAblation(b *testing.B) {
	workerSet := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		workerSet = append(workerSet, n)
	}
	flagship := flagshipFixture(b, 2000, true)
	flagshipQ := flagshipQueryText()
	for _, workers := range workerSet {
		b.Run(fmt.Sprintf("flagship/workers=%d", workers), func(b *testing.B) {
			flagship.MaxParallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := flagship.Query(flagshipQ)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Bindings) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
	flagship.MaxParallelism = 0

	// Catalogue search over a product archive large enough that the
	// filter and join stages exceed the morsel thresholds.
	st := strabon.NewStore()
	frames := cachedFrames(32, 1)
	for i := 0; i < 1024; i++ {
		f := *frames[0]
		f.ID = fmt.Sprintf("MSG2-SYN-%04d", i)
		f.Time = f.Time.Add(time.Duration(i) * 15 * time.Minute)
		st.AddAll(ingest.ExtractMetadata(&f))
	}
	catalogue := stsparql.New(st)
	catalogueQ := `
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?img ?t WHERE {
			?img a noa:Product .
			?img noa:satellite "Meteosat-9" .
			?img noa:acquiredAt ?t .
			?img noa:coverage ?cov .
			FILTER(strdf:intersects(?cov, "POLYGON ((22 37, 25 37, 25 39, 22 39, 22 37))"^^strdf:WKT))
		} ORDER BY ?t LIMIT 20`
	for _, workers := range workerSet {
		b.Run(fmt.Sprintf("catalogue/workers=%d", workers), func(b *testing.B) {
			catalogue.MaxParallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := catalogue.Query(catalogueQ)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Bindings) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
	catalogue.MaxParallelism = 0
}

// A1 — ablation: the store-level spatial candidate lookup with the R-tree
// versus a full scan of the geometry dictionary (the operation every
// pushed-down spatial filter performs), plus a query-level comparison of
// pushdown on/off.
func BenchmarkAblationSpatialIndex(b *testing.B) {
	window := geo.Envelope{MinX: 23, MinY: 37.5, MaxX: 23.5, MaxY: 38}
	for _, nSites := range []int{500, 2000, 8000, 32000} {
		st := strabon.NewStore()
		st.AddAll(linkeddata.SyntheticSites(nSites))
		for _, mode := range []struct {
			name    string
			indexed bool
		}{{"rtree", true}, {"scan", false}} {
			b.Run(fmt.Sprintf("lookup/sites=%d/%s", nSites, mode.name), func(b *testing.B) {
				st.SetSpatialIndexEnabled(mode.indexed)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := st.SpatialCandidates(window); len(got) == 0 {
						b.Fatal("no candidates")
					}
				}
			})
		}
		st.SetSpatialIndexEnabled(true)
	}
	// Query level: spatial pushdown prunes the BGP through the R-tree
	// before the exact filter runs; without it every site is tested.
	for _, nSites := range []int{2000, 8000} {
		st := strabon.NewStore()
		st.AddAll(linkeddata.SyntheticSites(nSites))
		query := `
			PREFIX gn: <http://sws.geonames.org/teleios/>
			PREFIX noa: <http://teleios.di.uoa.gr/noa#>
			PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
			SELECT ?s WHERE {
				?s a gn:ArchaeologicalSite .
				?s noa:hasGeometry ?g .
				FILTER(strdf:intersects(?g, "POLYGON ((23 37.5, 23.5 37.5, 23.5 38, 23 38, 23 37.5))"^^strdf:WKT))
			}`
		for _, mode := range []struct {
			name     string
			pushdown bool
		}{{"pushdown", true}, {"nopushdown", false}} {
			b.Run(fmt.Sprintf("query/sites=%d/%s", nSites, mode.name), func(b *testing.B) {
				eng := stsparql.New(st)
				eng.DisableSpatialPushdown = !mode.pushdown
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := eng.Query(query)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Bindings) == 0 {
						b.Fatal("no sites in window")
					}
				}
			})
		}
	}
}

// A4 — ablation: the vectorized id-space executor versus the legacy
// binding-at-a-time evaluator, on the flagship join and the catalogue
// search (the two query shapes the PR 2 rewrite targets).
func BenchmarkAblationExecutor(b *testing.B) {
	eng := flagshipFixture(b, 500, true)
	flagship := flagshipQueryText()
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"vectorized", false}, {"legacy", true}} {
		b.Run("flagship/"+mode.name, func(b *testing.B) {
			eng.DisableVectorized = mode.legacy
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(flagship)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Bindings) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
	eng.DisableVectorized = false
}

// A2 — ablation: column-at-a-time kernels versus tuple-at-a-time rows.
func BenchmarkAblationColumnVsRow(b *testing.B) {
	const n = 1_000_000
	keys := make([]int64, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = int64(i % 1000)
		vals[i] = float64(i%997) / 997
	}
	colTbl := column.NewTable("t",
		column.Field{Name: "k", Typ: column.Int64},
		column.Field{Name: "v", Typ: column.Float64})
	colTbl.Cols[0] = column.NewInt64(keys)
	colTbl.Cols[1] = column.NewFloat64(vals)
	rowTbl := column.FromTable(colTbl)

	b.Run("select/column", func(b *testing.B) {
		c := colTbl.Col("v")
		for i := 0; i < b.N; i++ {
			if got := c.SelectRangeFloat(0.25, 0.5); len(got) == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("select/row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := rowTbl.SelectFloatRange("v", 0.25, 0.5); len(got) == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("sum/column", func(b *testing.B) {
		c := colTbl.Col("v")
		for i := 0; i < b.N; i++ {
			if c.SumFloat() == 0 {
				b.Fatal("zero sum")
			}
		}
	})
	b.Run("sum/row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rowTbl.SumFloat("v") == 0 {
				b.Fatal("zero sum")
			}
		}
	})

	// Join: 1M probe rows against a 1000-key build side.
	dimKeys := make([]int64, 1000)
	for i := range dimKeys {
		dimKeys[i] = int64(i)
	}
	dimCol := column.NewTable("d", column.Field{Name: "k", Typ: column.Int64})
	dimCol.Cols[0] = column.NewInt64(dimKeys)
	dimRow := column.FromTable(dimCol)
	b.Run("join/column", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l, _ := column.HashJoinInt(colTbl.Col("k"), dimCol.Col("k"))
			if len(l) != n {
				b.Fatalf("join rows = %d", len(l))
			}
		}
	})
	b.Run("join/row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := rowTbl.HashJoinInt("k", dimRow, "k")
			if len(out) != n {
				b.Fatalf("join rows = %d", len(out))
			}
		}
	})
}

// A3 — ablation: Data Vault lazy ingestion versus eager whole-repository
// loading, when a query touches a single product out of K.
func BenchmarkAblationDataVault(b *testing.B) {
	const nFrames = 16
	dir := b.TempDir()
	frames := raster.Generate(raster.GenOptions{Width: 128, Height: 128, Steps: nFrames})
	for _, f := range frames {
		if _, err := raster.SaveFrame(dir, f); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := vault.New()
			if err := v.Attach(dir); err != nil {
				b.Fatal(err)
			}
			ids := v.IDs()
			f, err := v.Frame(ids[len(ids)-1])
			if err != nil {
				b.Fatal(err)
			}
			if len(f.Bands) == 0 {
				b.Fatal("no bands")
			}
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := vault.New()
			if err := v.Attach(dir); err != nil {
				b.Fatal(err)
			}
			if err := v.LoadAll(); err != nil {
				b.Fatal(err)
			}
			ids := v.IDs()
			f, err := v.Frame(ids[len(ids)-1])
			if err != nil {
				b.Fatal(err)
			}
			if len(f.Bands) == 0 {
				b.Fatal("no bands")
			}
		}
	})
}

// BenchmarkShapefileExport measures the product serialisation step of
// Scenario 1 (shapefile generation).
func BenchmarkShapefileExport(b *testing.B) {
	f := cachedFrames(128, 6)[5]
	p, err := noa.DefaultChain(scene.Region).Run(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := noa.WriteShapefile(io.Discard, p.Hotspots); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerOrdering contrasts the selectivity-ordered BGP
// evaluation against syntactic order on an unfavourably written query.
func BenchmarkOptimizerOrdering(b *testing.B) {
	st := strabon.NewStore()
	st.AddAll(linkeddata.All())
	st.AddAll(linkeddata.SyntheticSites(2000))
	// One needle.
	st.Add(rdf.NewTriple(rdf.IRI("http://ex/needle"),
		rdf.IRI("http://ex/isNeedle"), rdf.BooleanLiteral(true)))
	st.Add(rdf.NewTriple(rdf.IRI("http://ex/needle"),
		rdf.IRI(rdf.RDFType), rdf.IRI("http://sws.geonames.org/teleios/ArchaeologicalSite")))
	// Query written worst-first: the unselective pattern leads.
	query := `
		PREFIX gn: <http://sws.geonames.org/teleios/>
		SELECT ?s WHERE {
			?s a gn:ArchaeologicalSite .
			?s <http://ex/isNeedle> ?flag .
		}`
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"optimized", false}, {"syntactic", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := stsparql.New(st)
			eng.DisableOptimizer = mode.disable
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Bindings) != 1 {
					b.Fatalf("rows = %d", len(res.Bindings))
				}
			}
		})
	}
}
