# TELEIOS reproduction — build, test and benchmark entry points.

GO ?= go

# The tier-1 benchmark set: the paper's three figures, two scenarios, the
# flagship query and the design ablations (see bench_test.go), plus the
# SciQL executor and parallel array-kernel benchmarks (internal/sciql,
# internal/array) added in PR 3, the durability benchmarks
# (internal/persist: WAL append, snapshot write/load vs the legacy
# N-Triples path, WAL-replay recovery) added in PR 4, and the
# morsel-parallel multi-pattern SPARQL cores ablation
# (BenchmarkParallelQueryAblation: 1/2/4/GOMAXPROCS workers) added in
# PR 5, and the replication benchmarks (internal/replication: WAL
# tail-apply throughput and cold-replica bootstrap time) added in PR 6.
# PR 7 widens the persist set: snapshot write/load/scan-cold now run per
# format (raw vs packed) and report disk-bytes / resident-bytes metrics.
# PR 10 adds the group-commit writer-count ablation (acked-updates/sec
# and fsyncs/op at 1/2/4/8 writers, group vs nogroup pipeline, per sync
# mode) and the streaming /ingest endpoint benchmark.
BENCH_TIER1 = BenchmarkFigure1Pipeline|BenchmarkFigure3CatalogueSearch|BenchmarkFlagshipQuery|BenchmarkOptimizerOrdering|BenchmarkAblationExecutor|BenchmarkAblationSpatialIndex|BenchmarkParallelQueryAblation
BENCH_SCIQL = BenchmarkSelectFilter|BenchmarkGroupByAggregate|BenchmarkArrayUpdateClassify|BenchmarkAlignedArrayJoin|BenchmarkDimensionPushdownCrop|BenchmarkAblationSciQLExecutor
BENCH_ARRAY = BenchmarkConvolve2D|BenchmarkResampleBilinear|BenchmarkTileAvg|BenchmarkConnectedComponents|BenchmarkSummarize|BenchmarkAblationParallelKernels
BENCH_PERSIST = BenchmarkWALAppend|BenchmarkWALAppendBatch|BenchmarkWALAppendSynced|BenchmarkSnapshotWrite|BenchmarkSnapshotLoad|BenchmarkSnapshotScanCold|BenchmarkNTriplesLoad|BenchmarkRecoveryReplay
BENCH_GROUP = BenchmarkGroupCommitWriters
BENCH_INGEST = BenchmarkIngestEndpoint
BENCH_REPL = BenchmarkTailApply|BenchmarkReplicaBootstrap

.PHONY: all build test race vet lint gen-registry bench bench-json equivalence crash-test replica-test fault-test clean

all: vet lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/endpoint/ ./internal/strabon/ ./internal/stsparql/ ./internal/sciql/ ./internal/array/ ./internal/parallel/ ./internal/persist/ ./internal/replication/ ./internal/colpack/ ./internal/resilience/ ./internal/faults/ ./internal/vault/

# lint builds teleios-vet (the project-invariant analyzer suite in
# internal/lint: lockcheck, fsxcheck, ctxcheck, failpointcheck,
# errdropcheck — see docs/static-analysis.md) and runs it twice: via
# `go vet -vettool` so per-package results land in the build cache, and
# standalone over ./... for the whole-program failpoint orphan check.
lint:
	$(GO) build -o bin/teleios-vet ./cmd/teleios-vet
	$(GO) vet -vettool=$(CURDIR)/bin/teleios-vet ./...
	./bin/teleios-vet ./...

# gen-registry regenerates internal/faults/registry.go from the
# failpoint matrix in docs/operations.md (the single source of truth
# failpointcheck validates plants against).
gen-registry:
	$(GO) generate ./internal/faults

# crash-test SIGKILLs a loaded teleios-server mid-write and asserts the
# durable data dir recovers every acknowledged update.
crash-test:
	bash scripts/crashtest.sh

# replica-test boots a live topology (primary + 2 replicas + router),
# writes through the router, and asserts convergence, bit-identical
# reads, read-your-writes, and SIGKILL-a-replica recovery with zero
# acked-write loss.
replica-test:
	bash scripts/replicatest.sh

# fault-test runs the deterministic failpoint chaos suites (torn WAL
# writes, fsync failures, corrupt snapshots, torn replication streams,
# dropped clients, overload shedding) plus the resilience-primitive and
# failpoint-framework unit tests under -race.
fault-test:
	$(GO) test -race -count=1 ./internal/faults/ ./internal/resilience/
	$(GO) test -count=1 -run 'Fault|Torn|Rollback|Fsync|Corrupt|SlowDisk|Snapshot' ./internal/persist/
	$(GO) test -count=1 -run 'Bootstrap|TailFault|TornTail' ./internal/replication/
	$(GO) test -count=1 -run 'RateLimit|Shed|Degraded|WALBreak|Serializer|Disconnect|RetryAfter|EWMA|ClientKey' ./internal/endpoint/

vet:
	$(GO) vet ./...

# bench runs the tier-1 benchmark set with allocation accounting and
# leaves both the raw output (bin/bench.out, an ignored path — the repo
# root stays clean) and the JSON artefact.
bench:
	@mkdir -p bin
	$(GO) test -run '^$$' -bench '$(BENCH_TIER1)' -benchmem . | tee bin/bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_SCIQL)' -benchmem ./internal/sciql/ | tee -a bin/bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_ARRAY)' -benchmem ./internal/array/ | tee -a bin/bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_PERSIST)' -benchmem -short ./internal/persist/ | tee -a bin/bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_GROUP)' -benchmem ./internal/persist/ | tee -a bin/bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_INGEST)' -benchmem ./internal/endpoint/ | tee -a bin/bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_REPL)' -benchmem ./internal/replication/ | tee -a bin/bench.out

# bench-json converts the last bench run (or a fresh one) into the
# machine-readable perf record.
bench-json: bench
	$(GO) run ./cmd/benchjson < bin/bench.out > BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# equivalence runs the executor-equivalence gates in both serial and
# parallel-morsel modes (the CI gate for the morsel executor).
equivalence:
	$(GO) test -run 'TestExecutorEquivalence|TestSerialParallelEquivalence|TestContextCancellation' ./internal/stsparql/
	$(GO) test -race -run 'TestSerialParallelEquivalence|TestConcurrentParallelQueriesUpdatesCheckpoints' ./internal/stsparql/
	$(GO) test -run 'TestPrimaryReplicaEquivalence' ./internal/replication/

clean:
	rm -f bench.out bin/bench.out
