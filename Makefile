# TELEIOS reproduction — build, test and benchmark entry points.

GO ?= go

# The tier-1 benchmark set: the paper's three figures, two scenarios, the
# flagship query and the design ablations (see bench_test.go).
BENCH_TIER1 = BenchmarkFigure3CatalogueSearch|BenchmarkFlagshipQuery|BenchmarkOptimizerOrdering|BenchmarkAblationExecutor|BenchmarkAblationSpatialIndex

.PHONY: all build test race vet bench bench-json clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/endpoint/ ./internal/strabon/ ./internal/stsparql/

vet:
	$(GO) vet ./...

# bench runs the tier-1 benchmark set with allocation accounting and
# leaves both the raw output (bench.out) and the JSON artefact.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_TIER1)' -benchmem . | tee bench.out

# bench-json converts the last bench run (or a fresh one) into the
# machine-readable perf record.
bench-json: bench
	$(GO) run ./cmd/benchjson < bench.out > BENCH_PR2.json
	@echo wrote BENCH_PR2.json

clean:
	rm -f bench.out
