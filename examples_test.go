package teleios

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end-to-end; each one is a
// self-contained demo scenario and must exit cleanly with the expected
// markers in its output.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run whole scenarios; skipped in -short mode")
	}
	cases := []struct {
		dir     string
		markers []string
	}{
		{"./examples/quickstart", []string{"archive: 6 products", "hotspots", "towns within 25 km"}},
		{"./examples/firemonitoring", []string{"chain over the time series", "classifier comparison", "the chain as SciQL"}},
		{"./examples/refinement", []string{"refinement:", "rejected", "fire map layer"}},
		{"./examples/discovery", []string{"catalogue search", "flagship query", "Olympia"}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			for _, m := range c.markers {
				if !strings.Contains(string(out), m) {
					t.Errorf("%s output missing %q:\n%s", c.dir, m, out)
				}
			}
		})
	}
}
