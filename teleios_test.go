package teleios

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestArchitectureTiers is the F2 integration test: one request crossing
// all four tiers — ingestion (vault + content extraction), database
// (SciQL + Strabon), service processing (chain + refinement + fire map)
// and the application facade.
func TestArchitectureTiers(t *testing.T) {
	dir := t.TempDir()
	ids, err := GenerateArchive(dir, 96, 96, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 {
		t.Fatalf("archive = %d frames", len(ids))
	}
	obs := Open(Options{LoadLinkedData: true})
	if err := obs.AttachRepository(dir); err != nil {
		t.Fatal(err)
	}
	if got := obs.Products(); len(got) != 6 {
		t.Fatalf("products = %d", len(got))
	}

	// Database tier: the catalogue is queryable with SciQL.
	cat := obs.Catalog()
	if cat.NumRows() != 6 {
		t.Fatalf("catalog rows = %d", cat.NumRows())
	}
	res, err := obs.SciQL(`SELECT count(*) AS n FROM catalog WHERE sensor = 'SEVIRI'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Col("n").Int(0) != 6 {
		t.Fatal("SciQL catalog query")
	}

	// Ingestion tier: arrays + metadata.
	f, err := obs.Ingest(ids[5])
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != ids[5] {
		t.Fatal("ingest frame")
	}
	bandQuery := fmt.Sprintf(`SELECT max(v) AS m FROM %s_IR_039`, ArrayPrefix(ids[5]))
	resBand, err := obs.SciQL(bandQuery)
	if err != nil {
		t.Fatal(err)
	}
	if resBand.Table.Col("m").Float(0) < 300 {
		t.Fatal("band array content")
	}
	// Metadata landed in Strabon.
	meta, err := obs.StSPARQL(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT ?p WHERE { ?p a noa:Product }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Bindings) != 1 {
		t.Fatalf("products in store = %d", len(meta.Bindings))
	}

	// Service tier: chain, refinement, fire map.
	p, err := obs.RunChain(ids[5])
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hotspots) == 0 {
		t.Fatal("no hotspots")
	}
	stats, err := obs.Refine()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != len(p.Hotspots) {
		t.Fatalf("refine total = %d", stats.Total)
	}
	m, err := obs.FireMap(30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layer("hotspots")) == 0 {
		t.Fatal("fire map empty")
	}
	var buf bytes.Buffer
	if err := m.WriteGeoJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FeatureCollection") {
		t.Fatal("GeoJSON output")
	}
	// Shapefile output.
	var shp bytes.Buffer
	if err := obs.WriteShapefile(&shp, p); err != nil {
		t.Fatal(err)
	}
	if shp.Len() < 100 {
		t.Fatal("shapefile too small")
	}

	// Knowledge tier: annotation.
	n, err := obs.Annotate(ids[5], 16)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no annotations")
	}
	annres, err := obs.StSPARQL(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		SELECT (COUNT(*) AS ?n) WHERE { ?p noa:hasAnnotation ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	if annres.Bindings[0]["n"].Value == "0" {
		t.Fatal("annotations not stored")
	}

	// Lazy vault: only the frames we touched were decoded.
	s := obs.Stats()
	if s.Vault.Loads > 2 {
		t.Fatalf("vault loads = %d, expected lazy decoding", s.Vault.Loads)
	}
	if s.Store.Triples == 0 || s.Store.SpatialLiterals == 0 {
		t.Fatalf("store stats = %+v", s.Store)
	}
}

// TestFlagshipQuery reproduces the paper's Section 1 information request:
// "Find an image taken by a Meteosat second generation satellite on
// 25 August 2007 which covers the area of the Peloponnese and contains
// hotspots corresponding to forest fires located within 2 km from a major
// archaeological site."
func TestFlagshipQuery(t *testing.T) {
	dir := t.TempDir()
	ids, err := GenerateArchive(dir, 128, 128, 6)
	if err != nil {
		t.Fatal(err)
	}
	obs := Open(Options{LoadLinkedData: true})
	if err := obs.AttachRepository(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.Ingest(ids[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.RunChain(ids[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.Refine(); err != nil {
		t.Fatal(err)
	}
	res, err := obs.StSPARQL(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		PREFIX gn: <http://sws.geonames.org/teleios/>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT DISTINCT ?img ?site WHERE {
			?img a noa:Product .
			?img noa:satellite "Meteosat-9" .
			?img noa:coverage ?cov .
			?h a mon:Hotspot .
			?h noa:derivedFromProduct ?img .
			?h noa:hasGeometry ?hg .
			?site a gn:ArchaeologicalSite .
			?site noa:hasGeometry ?sg .
			FILTER(strdf:distance(?hg, ?sg) < 2000)
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) == 0 {
		t.Fatal("flagship query found nothing; the Olympia fire is seeded 1.5 km from the Olympia site")
	}
	foundOlympia := false
	for _, b := range res.Bindings {
		if strings.Contains(b["site"].Value, "Olympia") {
			foundOlympia = true
		}
	}
	if !foundOlympia {
		t.Fatalf("expected the Olympia site, got %v", res.Bindings)
	}
}

func TestOntologyAccessor(t *testing.T) {
	obs := Open(Options{})
	lc, mon := obs.Ontologies()
	if lc == nil || mon == nil {
		t.Fatal("ontologies")
	}
	if !lc.IsSubClassOf("http://teleios.di.uoa.gr/landcover#Lake", "http://teleios.di.uoa.gr/landcover#WaterBody") {
		t.Fatal("land cover taxonomy")
	}
}

// TestStorePersistence round-trips the observatory's knowledge base
// through SaveStore/LoadStore: products, hotspots and linked data survive,
// and spatial queries still answer after the reload.
func TestStorePersistence(t *testing.T) {
	archive := t.TempDir()
	ids, err := GenerateArchive(archive, 96, 96, 6)
	if err != nil {
		t.Fatal(err)
	}
	obs := Open(Options{LoadLinkedData: true})
	if err := obs.AttachRepository(archive); err != nil {
		t.Fatal(err)
	}
	p, err := obs.RunChain(ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	storeDir := t.TempDir()
	if err := obs.SaveStore(storeDir); err != nil {
		t.Fatal(err)
	}

	// A fresh observatory loads the saved knowledge base.
	obs2 := Open(Options{})
	if err := obs2.LoadStore(storeDir); err != nil {
		t.Fatal(err)
	}
	res, err := obs2.StSPARQL(`
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		SELECT (COUNT(*) AS ?n) WHERE { ?h a mon:Hotspot }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bindings[0]["n"].Value != fmt.Sprintf("%d", len(p.Hotspots)) {
		t.Fatalf("hotspots after reload = %v, want %d", res.Bindings[0]["n"], len(p.Hotspots))
	}
	// Spatial index was rebuilt: the refinement still works.
	if _, err := obs2.Refine(); err != nil {
		t.Fatal(err)
	}
	if err := obs2.LoadStore(t.TempDir()); err == nil {
		t.Fatal("loading an empty dir should error")
	}
}

func TestChainSwap(t *testing.T) {
	obs := Open(Options{})
	c := obs.Chain()
	c.Classifier.AbsoluteK = 400 // impossible threshold
	obs.SetChain(c)
	if obs.Chain().Classifier.AbsoluteK != 400 {
		t.Fatal("chain not swapped")
	}
}
