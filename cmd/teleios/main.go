// Command teleios is the Virtual Earth Observatory CLI: it generates the
// synthetic satellite archive, runs the NOA processing chain, refines
// products, builds fire maps, and evaluates ad-hoc SciQL / stSPARQL.
//
// Usage:
//
//	teleios generate -dir DIR [-size N] [-steps K]
//	teleios catalog  -dir DIR
//	teleios chain    -dir DIR [-product ID] [-shp FILE]
//	teleios refine   -dir DIR
//	teleios firemap  -dir DIR [-radius METERS] [-out FILE]
//	teleios query    -dir DIR 'SELECT ...'
//	teleios sciql    -dir DIR 'SELECT ...'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", "archive", "repository directory of .sev products")
	size := fs.Int("size", 128, "frame width and height in pixels (generate)")
	steps := fs.Int("steps", 6, "number of 15-minute frames (generate)")
	product := fs.String("product", "", "product ID (chain); default: latest")
	shp := fs.String("shp", "", "write hotspot shapefile to this path (chain)")
	radius := fs.Float64("radius", 30000, "enrichment radius in meters (firemap)")
	out := fs.String("out", "", "output file (firemap); default stdout")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	if err := run(cmd, fs.Args(), *dir, *size, *steps, *product, *shp, *radius, *out); err != nil {
		fmt.Fprintln(os.Stderr, "teleios:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: teleios <generate|catalog|chain|refine|firemap|query|sciql> [flags] [statement]`)
}

func run(cmd string, args []string, dir string, size, steps int, product, shp string, radius float64, out string) error {
	switch cmd {
	case "generate":
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		ids, err := core.GenerateArchive(dir, size, size, steps)
		if err != nil {
			return err
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	case "catalog":
		obs, err := open(dir, false)
		if err != nil {
			return err
		}
		cat := obs.Catalog()
		fmt.Printf("%-22s %-12s %-8s %5s %5s\n", "ID", "SATELLITE", "SENSOR", "W", "H")
		for i := 0; i < cat.NumRows(); i++ {
			fmt.Printf("%-22s %-12s %-8s %5d %5d\n",
				cat.Col("id").Str(i), cat.Col("satellite").Str(i), cat.Col("sensor").Str(i),
				cat.Col("width").Int(i), cat.Col("height").Int(i))
		}
		return nil
	case "chain":
		obs, err := open(dir, true)
		if err != nil {
			return err
		}
		id := product
		if id == "" {
			ids := obs.Products()
			if len(ids) == 0 {
				return fmt.Errorf("repository %s is empty", dir)
			}
			id = ids[len(ids)-1]
		}
		p, err := obs.RunChain(id)
		if err != nil {
			return err
		}
		fmt.Printf("product %s: %d hotspot(s)\n", p.FrameID, len(p.Hotspots))
		for _, h := range p.Hotspots {
			fmt.Printf("  %-28s conf=%.2f pixels=%d\n", h.ID, h.Confidence, h.PixelCount)
		}
		for stage, d := range p.Timings {
			fmt.Printf("  stage %-13s %v\n", stage, d)
		}
		if shp != "" {
			f, err := os.Create(shp)
			if err != nil {
				return err
			}
			if err := obs.WriteShapefile(f, p); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", shp)
		}
		return nil
	case "refine":
		obs, err := open(dir, true)
		if err != nil {
			return err
		}
		for _, id := range obs.Products() {
			if _, err := obs.RunChain(id); err != nil {
				return err
			}
		}
		stats, err := obs.Refine()
		if err != nil {
			return err
		}
		fmt.Printf("hotspots: %d total, %d rejected (off-land), %d clipped to coastline\n",
			stats.Total, stats.Rejected, stats.Clipped)
		return nil
	case "firemap":
		obs, err := open(dir, true)
		if err != nil {
			return err
		}
		for _, id := range obs.Products() {
			if _, err := obs.RunChain(id); err != nil {
				return err
			}
		}
		if _, err := obs.Refine(); err != nil {
			return err
		}
		m, err := obs.FireMap(radius)
		if err != nil {
			return err
		}
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return m.WriteGeoJSON(w)
	case "query", "sciql":
		if len(args) != 1 {
			return fmt.Errorf("%s needs exactly one statement argument", cmd)
		}
		obs, err := open(dir, true)
		if err != nil {
			return err
		}
		obs.Catalog()
		for _, id := range obs.Products() {
			if _, err := obs.Ingest(id); err != nil {
				return err
			}
		}
		if cmd == "sciql" {
			res, err := obs.SciQL(args[0])
			if err != nil {
				return err
			}
			if res.Table != nil {
				printTable(res.Table)
			} else {
				fmt.Printf("ok (%d affected)\n", res.Affected)
			}
			return nil
		}
		res, err := obs.StSPARQL(args[0])
		if err != nil {
			return err
		}
		printSPARQL(res)
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func open(dir string, linked bool) (*core.Observatory, error) {
	obs := core.New(core.Options{LoadLinkedData: linked})
	if err := obs.AttachRepository(dir); err != nil {
		return nil, err
	}
	return obs, nil
}
