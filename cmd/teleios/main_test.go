package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The CLI's run function is exercised directly: generate an archive, then
// drive every subcommand against it.
func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if err := run("generate", nil, dir, 64, 4, "", "", 0, ""); err != nil {
		t.Fatalf("generate: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("archive files = %d", len(entries))
	}
	if err := run("catalog", nil, dir, 0, 0, "", "", 0, ""); err != nil {
		t.Fatalf("catalog: %v", err)
	}
	shp := filepath.Join(dir, "out.shp")
	if err := run("chain", nil, dir, 0, 0, "", shp, 0, ""); err != nil {
		t.Fatalf("chain: %v", err)
	}
	if fi, err := os.Stat(shp); err != nil || fi.Size() < 100 {
		t.Fatalf("shapefile: %v", err)
	}
	if err := run("refine", nil, dir, 0, 0, "", "", 0, ""); err != nil {
		t.Fatalf("refine: %v", err)
	}
	gj := filepath.Join(dir, "map.geojson")
	if err := run("firemap", nil, dir, 0, 0, "", "", 30000, gj); err != nil {
		t.Fatalf("firemap: %v", err)
	}
	if fi, err := os.Stat(gj); err != nil || fi.Size() == 0 {
		t.Fatalf("geojson: %v", err)
	}
	if err := run("query", []string{`SELECT ?p WHERE { ?p a <http://teleios.di.uoa.gr/noa#Product> }`},
		dir, 0, 0, "", "", 0, ""); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := run("sciql", []string{`SELECT count(*) AS n FROM catalog`},
		dir, 0, 0, "", "", 0, ""); err != nil {
		t.Fatalf("sciql: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("bogus", nil, dir, 0, 0, "", "", 0, ""); err == nil {
		t.Fatal("unknown command should error")
	}
	if err := run("chain", nil, dir, 0, 0, "", "", 0, ""); err == nil {
		t.Fatal("chain on empty repo should error")
	}
	if err := run("query", nil, dir, 0, 0, "", "", 0, ""); err == nil {
		t.Fatal("query without statement should error")
	}
	if err := run("catalog", nil, filepath.Join(dir, "missing"), 0, 0, "", "", 0, ""); err == nil {
		t.Fatal("missing repo should error")
	}
	if err := run("query", []string{"NOT SPARQL"}, dir, 0, 0, "", "", 0, ""); err == nil {
		t.Fatal("bad query should error")
	}
}
