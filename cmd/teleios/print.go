package main

import (
	"fmt"
	"strings"

	"repro/internal/column"
	"repro/internal/stsparql"
)

// printTable renders a SciQL result table.
func printTable(t *column.Table) {
	var names []string
	for _, f := range t.Fields {
		names = append(names, f.Name)
	}
	fmt.Println(strings.Join(names, "\t"))
	for i := 0; i < t.NumRows(); i++ {
		var cells []string
		for _, c := range t.Cols {
			v := c.Value(i)
			if v == nil {
				cells = append(cells, "NULL")
			} else {
				cells = append(cells, fmt.Sprint(v))
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d row(s))\n", t.NumRows())
}

// printSPARQL renders an stSPARQL result.
func printSPARQL(r *stsparql.Result) {
	switch {
	case r.Triples != nil:
		for _, t := range r.Triples {
			fmt.Println(t)
		}
		fmt.Printf("(%d triple(s))\n", len(r.Triples))
	case r.Vars != nil:
		fmt.Println(strings.Join(prefixVars(r.Vars), "\t"))
		for _, b := range r.Bindings {
			var cells []string
			for _, v := range r.Vars {
				if t, ok := b[v]; ok {
					cells = append(cells, t.String())
				} else {
					cells = append(cells, "")
				}
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
		fmt.Printf("(%d row(s))\n", len(r.Bindings))
	case r.Affected > 0:
		fmt.Printf("ok (%d affected)\n", r.Affected)
	default:
		fmt.Println(r.Bool)
	}
}

func prefixVars(vars []string) []string {
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = "?" + v
	}
	return out
}
