// Command teleios-vet is the multichecker for the project-invariant
// analyzer suite in internal/lint: lockcheck, fsxcheck, ctxcheck,
// failpointcheck, and errdropcheck.
//
// It runs in two modes:
//
//	teleios-vet ./...                      standalone: loads packages via
//	                                       `go list -export`, runs every
//	                                       analyzer, including the
//	                                       whole-program failpoint orphan
//	                                       check
//	go vet -vettool=$(pwd)/bin/teleios-vet ./...
//	                                       unitchecker protocol: the go
//	                                       command hands one package config
//	                                       at a time (with -V=full / -flags
//	                                       handshakes), analyzers run
//	                                       against the build's own export
//	                                       data, results are cached by the
//	                                       build cache
//
// Exit status: 0 clean, 1 driver error, 2 diagnostics reported —
// matching go vet's conventions.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	// Protocol handshakes come before flag parsing: the go command
	// probes `-V=full` (tool identity for the build cache) and
	// `-flags` (supported flag list) with no other arguments.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlags()
		return
	}

	analyzers := lint.Analyzers()
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (standalone mode)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: teleios-vet [flags] [package pattern ...]\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(realpath teleios-vet) [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	var active []*lint.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], active))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, active, *jsonOut))
}

// printVersion emits the `-V=full` line the go command hashes into
// its action IDs. The executable's own digest keys the build cache,
// so editing an analyzer invalidates prior vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
}

// printFlags answers the go command's `-flags` probe with the JSON
// flag inventory it uses to validate pass-through vet flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range lint.Analyzers() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer"})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// runStandalone loads the patterns with the go toolchain and runs the
// full suite, whole-program checks included.
func runStandalone(patterns []string, analyzers []*lint.Analyzer, jsonOut bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "teleios-vet:", err)
		return 1
	}
	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teleios-vet:", err)
		return 1
	}
	// The failpoint orphan check needs to see every plant in the
	// module; only enable it when the patterns cover the whole tree,
	// so `teleios-vet ./internal/strabon/` does not report false
	// orphans.
	whole := false
	for _, p := range patterns {
		if p == "./..." || p == "all" {
			whole = true
		}
	}
	diags, err := lint.Check(pkgs, analyzers, lint.CheckOptions{WholeProgram: whole})
	if err != nil {
		fmt.Fprintln(os.Stderr, "teleios-vet:", err)
		return 1
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "teleios-vet:", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, relativize(cwd, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "teleios-vet: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// relativize shortens absolute file paths under cwd for readable
// output.
func relativize(cwd string, d lint.Diagnostic) string {
	s := d.String()
	if rel, err := filepath.Rel(cwd, d.Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = strings.TrimPrefix(s, d.Position.Filename)
		s = rel + s
	}
	return s
}

// vetConfig is the JSON the go command writes for each package when
// driving a -vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package described by cfgFile.
func runUnit(cfgFile string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teleios-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "teleios-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command expects the output facts file to exist after any
	// successful run; this suite exchanges no facts, so it is empty.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		writeVetx()
		return 0
	}

	pkg, err := lint.LoadUnit(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "teleios-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Per-package protocol: no whole-program Finish hooks here (the
	// failpoint orphan check needs the full plant set and runs in the
	// standalone `make lint` pass instead).
	diags, err := lint.Check([]*lint.Package{pkg}, analyzers, lint.CheckOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "teleios-vet:", err)
		return 1
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
