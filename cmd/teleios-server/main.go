// Command teleios-server serves a Strabon store over HTTP as an
// stSPARQL endpoint (SPARQL 1.1 Protocol): the web-accessible face of
// the Virtual Earth Observatory.
//
// Usage:
//
//	teleios-server [-addr :8080] [-data-dir DIR] [-store DIR] [-nt FILE]
//	               [-linked] [-wal-sync always|none|DUR]
//	               [-wal-group-window DUR] [-ingest-max-chunk N]
//	               [-snapshot-format packed|raw]
//	               [-checkpoint-every DUR] [-checkpoint-bytes N]
//	               [-cache N] [-max-concurrency N] [-timeout DUR]
//	               [-max-query-parallelism N]
//	               [-readonly] [-save] [-legacy-eval] [-legacy-sciql]
//	               [-replicate-from URL] [-route-to URL,URL,...]
//
// -max-query-parallelism bounds the morsel parallelism of ONE query
// through the vectorized executor (0 = all cores, 1 = serial); the
// process-wide slot-budget pool still caps total extra goroutines
// across all concurrent queries and kernels at GOMAXPROCS-1. Prefix any
// read statement with EXPLAIN to see the physical plan the
// statistics-backed planner chose — estimated vs. measured
// cardinalities per operator and the morsel parallelism used.
//
// With -data-dir the store is durable: on boot the newest valid
// snapshot in the directory is loaded and the write-ahead log replayed
// past it, and afterwards every mutation — including INSERT/DELETE
// through the endpoint — is journalled before it is applied, so the
// database survives crashes and SIGKILL, not just graceful shutdown.
// -wal-sync picks the fsync policy (always = every durable ack, a
// duration = periodic, none = leave it to the OS); -checkpoint-every /
// -checkpoint-bytes bound how much WAL a restart replays. Writes commit
// through a group-commit pipeline: concurrent writers share one batched
// segment write and one fsync, so -wal-sync=always throughput scales
// with the writer count instead of paying one fsync per update.
// -wal-group-window adds a fixed accumulation delay before each flush
// (bigger batches, higher latency; the default 0 relies on natural
// batching alone). POST /ingest bulk-loads a streaming N-Triples body
// in pipelined chunks of -ingest-max-chunk triples.
// -snapshot-format picks what checkpoints write: packed (default) is
// the compressed, mmap-able columnar format that recovery maps and
// serves in place — restart cost is verification, not materialisation —
// while raw is the uncompressed PR 4 dump kept as an escape hatch.
// Recovery reads either format regardless of the flag, so switching it
// migrates the data directory at the next checkpoint.
//
// The dataset can be seeded from any combination of a legacy store
// directory (-store, as written by Store.Save), an N-Triples file (-nt)
// and the synthetic linked open data layers (-linked); with -data-dir
// the seeds are journalled like any other write (and re-seeding on a
// later boot is a no-op — duplicates are suppressed).
//
// -save (write legacy files back to -store on graceful shutdown) is
// deprecated: it persists only on clean exit and keeps the slow
// N-Triples format. Prefer -data-dir.
//
// Replication (see docs/replication.md): a node started with -data-dir
// automatically serves its WAL and snapshots under /replication/v1/.
// -replicate-from URL turns the node into a read-only replica of that
// primary: it bootstraps from the primary's newest snapshot, tails the
// WAL into its own -data-dir (so restarts resume locally), and rejects
// updates with 403. -route-to URL,URL,... runs a stateless
// consistent-hash router instead: the first URL is the primary (all
// updates go there), the rest are read replicas; reads hash by query
// text (or the Teleios-Tenant header) and a Teleios-Min-Version
// watermark steers read-your-writes traffic to caught-up backends.
//
// Example:
//
//	teleios-server -linked -data-dir ./teleios-data -addr :8080 &
//	curl 'http://localhost:8080/sparql?format=geojson' \
//	  --data-urlencode 'query=PREFIX noa: <http://teleios.di.uoa.gr/noa#>
//	    SELECT ?s ?geom WHERE { ?s noa:hasGeometry ?geom } LIMIT 5'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/endpoint"
	"repro/internal/linkeddata"
	"repro/internal/persist"
	"repro/internal/replication"
	"repro/internal/sciql"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

type serverConfig struct {
	addr            string
	dataDir         string
	walSync         string
	snapshotFormat  string
	checkpointEvery time.Duration
	checkpointBytes int64
	storeDir        string
	ntFile          string
	linked          bool
	cacheSize       int
	maxConc         int
	queueDepth      int
	timeout         time.Duration
	maxQueryPar     int
	readonly        bool
	save            bool
	legacyEval      bool
	replicateFrom   string
	routeTo         string
	rateLimit       float64
	rateBurst       int
	shedWatermark   float64
	breakerFails    int
	breakerOpen     time.Duration
	groupWindow     time.Duration
	ingestMaxChunk  int
}

func main() {
	var cfg serverConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable data directory (WAL + snapshots; recovered on boot)")
	flag.StringVar(&cfg.walSync, "wal-sync", "always", "WAL fsync policy: always, none, or an interval like 100ms")
	flag.StringVar(&cfg.snapshotFormat, "snapshot-format", "packed", "checkpoint snapshot format: packed (compressed, mmap-ed, served in place) or raw (PR 4 columnar dump); either format is recovered on boot")
	flag.DurationVar(&cfg.checkpointEvery, "checkpoint-every", 5*time.Minute, "background checkpoint interval (0 disables the timer)")
	flag.Int64Var(&cfg.checkpointBytes, "checkpoint-bytes", 64<<20, "background checkpoint WAL-size threshold in bytes (negative disables)")
	flag.StringVar(&cfg.storeDir, "store", "", "load a legacy saved store directory (see -save; deprecated in favor of -data-dir)")
	flag.StringVar(&cfg.ntFile, "nt", "", "load an N-Triples file")
	flag.BoolVar(&cfg.linked, "linked", false, "preload the synthetic linked open data")
	flag.IntVar(&cfg.cacheSize, "cache", 128, "LRU result cache capacity in entries (negative disables)")
	flag.IntVar(&cfg.maxConc, "max-concurrency", 8, "maximum concurrently evaluating queries")
	flag.IntVar(&cfg.queueDepth, "queue", 0, "query queue depth (0 means 4*max-concurrency, negative for no queue)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-query evaluation deadline")
	flag.IntVar(&cfg.maxQueryPar, "max-query-parallelism", 0, "morsel-parallel workers per query (0 = all cores, 1 = serial)")
	flag.BoolVar(&cfg.readonly, "readonly", false, "reject UPDATE statements")
	flag.BoolVar(&cfg.save, "save", false, "deprecated: write the store back to -store on graceful shutdown (prefer -data-dir)")
	flag.BoolVar(&cfg.legacyEval, "legacy-eval", false, "use the legacy binding-at-a-time evaluator instead of the vectorized id-space executor")
	flag.StringVar(&cfg.replicateFrom, "replicate-from", "", "run as a read-only replica tailing this primary's WAL (e.g. http://db0:8080; requires -data-dir)")
	flag.StringVar(&cfg.routeTo, "route-to", "", "run as a stateless query router over this comma-separated backend list (first = primary, rest = replicas)")
	flag.Float64Var(&cfg.rateLimit, "rate-limit", 0, "per-client request rate cap in req/s, keyed on the Teleios-Tenant header or remote IP (0 disables; excess gets 429)")
	flag.IntVar(&cfg.rateBurst, "rate-burst", 0, "per-client burst allowance above -rate-limit (0 means 2*rate-limit)")
	flag.Float64Var(&cfg.shedWatermark, "shed-watermark", 0, "fraction of -queue at which new queries are shed with 503 before the pool saturates (0 or out of range sheds only when full)")
	flag.IntVar(&cfg.breakerFails, "breaker-fails", 0, "router: consecutive failed health checks before a backend's circuit breaker ejects it (0 = default 2)")
	flag.DurationVar(&cfg.breakerOpen, "breaker-open", 0, "router: minimum hold-out after a breaker trips, damping flapping backends (0 readmits on the first healthy check)")
	flag.DurationVar(&cfg.groupWindow, "wal-group-window", 0, "extra accumulation delay before each group-commit flush (0 = natural batching only: a batch gathers for exactly as long as the previous fsync takes)")
	flag.IntVar(&cfg.ingestMaxChunk, "ingest-max-chunk", 0, "triples per /ingest commit batch (0 = default 8192)")
	legacySciQL := flag.Bool("legacy-sciql", false, "use the legacy tuple-at-a-time SciQL interpreter instead of the columnar kernel executor (applies to every SciQL engine in this process)")
	flag.Parse()

	sciql.DefaultDisableVectorized = *legacySciQL

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "teleios-server:", err)
		os.Exit(1)
	}
}

// parseWALSync maps the -wal-sync flag onto a persist sync policy.
func parseWALSync(s string) (persist.SyncMode, time.Duration, error) {
	switch s {
	case "always", "":
		return persist.SyncAlways, 0, nil
	case "none":
		return persist.SyncNone, 0, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("-wal-sync must be always, none, or a positive duration (got %q)", s)
		}
		return persist.SyncInterval, d, nil
	}
}

func run(cfg serverConfig) error {
	if cfg.routeTo != "" {
		if cfg.replicateFrom != "" || cfg.dataDir != "" || cfg.storeDir != "" || cfg.ntFile != "" || cfg.linked || cfg.save {
			return errors.New("-route-to is a stateless mode: it cannot be combined with -replicate-from, -data-dir, -store, -nt, -linked or -save")
		}
		return runRouter(cfg)
	}
	if cfg.replicateFrom != "" {
		if cfg.dataDir == "" {
			return errors.New("-replicate-from requires -data-dir (the replica's own durable directory)")
		}
		if cfg.storeDir != "" || cfg.ntFile != "" || cfg.linked || cfg.save {
			return errors.New("-replicate-from cannot be combined with seed flags (-store, -nt, -linked, -save): replicas get all data from the primary")
		}
		return runReplica(cfg)
	}
	if cfg.save && cfg.storeDir == "" {
		return errors.New("-save requires -store")
	}
	if cfg.save {
		fmt.Fprintln(os.Stderr, "teleios-server: warning: -save is deprecated; use -data-dir for crash-safe persistence")
	}

	// Durable path: recover the store from the data directory and keep
	// journalling through it. The in-memory path (no -data-dir) starts
	// empty.
	var (
		st      *strabon.Store
		manager *persist.Manager
	)
	if cfg.dataDir != "" {
		mode, every, err := parseWALSync(cfg.walSync)
		if err != nil {
			return err
		}
		recoverStart := time.Now()
		m, recovered, err := persist.Open(persist.Options{
			Dir:             cfg.dataDir,
			SyncMode:        mode,
			SyncEvery:       every,
			GroupWindow:     cfg.groupWindow,
			CheckpointEvery: cfg.checkpointEvery,
			CheckpointBytes: cfg.checkpointBytes,
			SnapshotFormat:  cfg.snapshotFormat,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "teleios-server: "+format+"\n", args...)
			},
		})
		if err != nil {
			return fmt.Errorf("recovering data dir %s: %w", cfg.dataDir, err)
		}
		manager, st = m, recovered
		defer manager.Close()
		ps := manager.Stats()
		fmt.Printf("teleios-server: recovered %d triples from %s in %s (%d WAL records replayed, wal-sync=%s)\n",
			st.Len(), cfg.dataDir, time.Since(recoverStart).Round(time.Millisecond), ps.ReplayedRecords, mode)
	} else {
		st = strabon.NewStore()
	}

	// Seed sources. Under -data-dir these are journalled writes like any
	// other, so they are durable and idempotent across restarts.
	if cfg.storeDir != "" {
		// Bootstrap (start empty, create the store on shutdown) only
		// when the directory itself does not exist. A directory that
		// exists but fails to load — even with a file-not-found from a
		// half-written snapshot — must be an error: silently starting
		// empty would overwrite whatever survives there on -save.
		_, statErr := os.Stat(cfg.storeDir)
		switch {
		case statErr == nil:
			if cfg.dataDir != "" {
				// Migration: merge the legacy store into the durable one.
				legacy, err := strabon.Load(cfg.storeDir)
				if err != nil {
					return fmt.Errorf("loading store %s: %w", cfg.storeDir, err)
				}
				n := st.AddAll(legacy.Triples())
				fmt.Printf("teleios-server: merged %d triples from legacy store %s\n", n, cfg.storeDir)
			} else {
				loaded, err := strabon.Load(cfg.storeDir)
				if err != nil {
					return fmt.Errorf("loading store %s: %w", cfg.storeDir, err)
				}
				st = loaded
			}
		case os.IsNotExist(statErr) && cfg.save:
			// Fresh dataset bootstrap.
		default:
			return fmt.Errorf("store directory %s: %w", cfg.storeDir, statErr)
		}
	}
	if cfg.ntFile != "" {
		f, err := os.Open(cfg.ntFile)
		if err != nil {
			return err
		}
		n, err := st.LoadNTriples(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", cfg.ntFile, err)
		}
		fmt.Printf("teleios-server: loaded %d triples from %s\n", n, cfg.ntFile)
	}
	if cfg.linked {
		st.AddAll(linkeddata.All())
	}
	if err := st.JournalErr(); err != nil {
		return fmt.Errorf("journalling seed data: %w", err)
	}

	eng := stsparql.New(st)
	eng.DisableVectorized = cfg.legacyEval
	eng.MaxParallelism = cfg.maxQueryPar
	epCfg := endpoint.Config{
		Engine:         eng,
		Store:          st,
		MaxConcurrency: cfg.maxConc,
		QueueDepth:     cfg.queueDepth,
		QueryTimeout:   cfg.timeout,
		CacheSize:      cfg.cacheSize,
		ReadOnly:       cfg.readonly,
		RateLimit:      cfg.rateLimit,
		RateBurst:      cfg.rateBurst,
		ShedWatermark:  cfg.shedWatermark,
		IngestMaxChunk: cfg.ingestMaxChunk,
	}
	if manager != nil {
		epCfg.DurabilityStats = func() endpoint.DurabilityStats {
			return durabilityStats(manager)
		}
		// A WAL that latched an unrecoverable append failure puts the
		// node in degraded read-only mode: reads keep serving, updates
		// get a clear 503 until a restart re-truncates the log.
		epCfg.DegradedCheck = manager.Broken
	}
	// With a data dir the node can feed replicas: mount the WAL-shipping
	// handlers on the same mux and surface shipping counters in /stats.
	var mounts []func(*http.ServeMux)
	if manager != nil {
		prim := replication.NewPrimary(manager)
		mounts = append(mounts, prim.Register)
		epCfg.ReplicationStats = func() any {
			return struct {
				Role string `json:"role"`
				replication.PrimaryStats
			}{"primary", prim.Stats()}
		}
	}
	srv, err := endpoint.NewServer(epCfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(mounts...),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		stats := st.Stats()
		fmt.Printf("teleios-server: listening on %s (%d triples, %d spatial literals)\n",
			cfg.addr, stats.Triples, stats.SpatialLiterals)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Println("teleios-server: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	// Drain the worker pool before snapshotting: an abandoned
	// (timed-out) update may still be mutating the store after its HTTP
	// connection is gone, and neither the legacy Save nor the final
	// checkpoint may race it. This also means a Shutdown timeout cannot
	// skip persistence — updates already applied would be lost.
	srv.Close()
	if manager != nil {
		if err := manager.Close(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Printf("teleios-server: checkpointed to %s\n", cfg.dataDir)
	}
	if cfg.save {
		if err := st.Save(cfg.storeDir); err != nil {
			return fmt.Errorf("saving store: %w", err)
		}
		fmt.Printf("teleios-server: store saved to %s\n", cfg.storeDir)
	}
	if shutErr != nil {
		return fmt.Errorf("shutdown: %w", shutErr)
	}
	return nil
}

// runReplica boots the node as a read-only replica: bootstrap from the
// primary's newest snapshot (first boot only), tail its WAL into a
// local durable directory, and serve queries from the replicated store.
// Updates get 403s pointing clients at the primary. The replica mounts
// the WAL-shipping handlers itself, so replicas can chain off replicas.
func runReplica(cfg serverConfig) error {
	mode, every, err := parseWALSync(cfg.walSync)
	if err != nil {
		return err
	}
	if every != 0 {
		return errors.New("-wal-sync intervals are not supported in replica mode; use always or none")
	}
	bootStart := time.Now()
	rep, err := replication.OpenReplica(replication.ReplicaOptions{
		Primary:         cfg.replicateFrom,
		Dir:             cfg.dataDir,
		SyncMode:        mode,
		HasSyncMode:     true,
		CheckpointEvery: cfg.checkpointEvery,
		CheckpointBytes: cfg.checkpointBytes,
		SnapshotFormat:  cfg.snapshotFormat,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "teleios-server: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer rep.Close()
	st := rep.Store()
	fmt.Printf("teleios-server: replica of %s ready in %s (%d triples, applied seq %d)\n",
		cfg.replicateFrom, time.Since(bootStart).Round(time.Millisecond), st.Len(), rep.AppliedSeq())

	eng := stsparql.New(st)
	eng.DisableVectorized = cfg.legacyEval
	eng.MaxParallelism = cfg.maxQueryPar
	prim := replication.NewPrimary(rep.Manager())
	epCfg := endpoint.Config{
		Engine:          eng,
		Store:           st,
		MaxConcurrency:  cfg.maxConc,
		QueueDepth:      cfg.queueDepth,
		QueryTimeout:    cfg.timeout,
		CacheSize:       cfg.cacheSize,
		ReadOnly:        true,
		ReadOnlyMessage: fmt.Sprintf("this node is a read-only replica; send updates to the primary at %s", cfg.replicateFrom),
		RateLimit:       cfg.rateLimit,
		RateBurst:       cfg.rateBurst,
		ShedWatermark:   cfg.shedWatermark,
		DurabilityStats: func() endpoint.DurabilityStats {
			return durabilityStats(rep.Manager())
		},
		ReplicationStats: func() any {
			return struct {
				Role string `json:"role"`
				replication.ReplicaStats
			}{"replica", rep.Stats()}
		},
	}
	srv, err := endpoint.NewServer(epCfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(prim.Register),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return serveUntilSignal(httpSrv, srv.Close, func() error {
		fmt.Println("teleios-server: replica shutting down")
		return rep.Close()
	})
}

// runRouter boots the node as a stateless consistent-hash query router
// over an existing primary + replica fleet. It holds no store: /sparql
// is proxied, /stats and /health describe the fleet.
func runRouter(cfg serverConfig) error {
	hosts := strings.Split(cfg.routeTo, ",")
	for i := range hosts {
		hosts[i] = strings.TrimSpace(hosts[i])
	}
	if len(hosts) == 0 || hosts[0] == "" {
		return errors.New("-route-to needs at least a primary URL")
	}
	rt, err := replication.NewRouter(replication.RouterOptions{
		Primary:        hosts[0],
		Replicas:       hosts[1:],
		FailAfter:      cfg.breakerFails,
		BreakerOpenFor: cfg.breakerOpen,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "teleios-server: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	mux := http.NewServeMux()
	rt.Register(mux)
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("teleios-server: routing %s -> primary %s + %d replica(s)\n", cfg.addr, hosts[0], len(hosts)-1)
	return serveUntilSignal(httpSrv, func() {}, func() error {
		fmt.Println("teleios-server: router shutting down")
		rt.Close()
		return nil
	})
}

// serveUntilSignal runs an HTTP server until SIGINT/SIGTERM, then
// drains it: Shutdown, stop accepting work (drain), then finish
// (persist/close state).
func serveUntilSignal(httpSrv *http.Server, drain func(), finish func() error) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("teleios-server: listening on %s\n", httpSrv.Addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		drain()
		finish()
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	drain()
	if err := finish(); err != nil {
		return err
	}
	if shutErr != nil {
		return fmt.Errorf("shutdown: %w", shutErr)
	}
	return nil
}

// durabilityStats maps persist.Manager stats onto the endpoint's
// telemetry block.
func durabilityStats(m *persist.Manager) endpoint.DurabilityStats {
	ps := m.Stats()
	ds := endpoint.DurabilityStats{
		WALBytes:          ps.WALBytes,
		WALSegments:       ps.WALSegments,
		WALSeq:            ps.LastSeq,
		Snapshots:         ps.Snapshots,
		LastCheckpointSeq: ps.LastCheckpointSeq,
		LastCheckpointMs:  ps.LastCheckpointTook.Milliseconds(),
		RecoveryMs:        ps.RecoveryTook.Milliseconds(),
		ReplayedRecords:   ps.ReplayedRecords,
		SnapshotFormat:    ps.SnapshotFormat,
		SnapshotBytes:     ps.SnapshotBytes,
		StoreMode:         ps.StoreMode,
		ResidentBytes:     ps.ResidentBytes,
	}
	if !ps.LastCheckpointAt.IsZero() {
		ds.LastCheckpointUnixMs = ps.LastCheckpointAt.UnixMilli()
	}
	if ps.JournalErr != nil {
		ds.JournalError = ps.JournalErr.Error()
	}
	ds.GroupBatches = ps.GroupBatches
	ds.GroupRecords = ps.GroupRecords
	ds.GroupFsyncs = ps.GroupFsyncs
	ds.FsyncsSaved = ps.FsyncsSaved
	ds.TicketWaitUs = ps.TicketWaitMean.Microseconds()
	ds.GroupWindowMs = ps.GroupWindow.Milliseconds()
	if ps.GroupBatches > 0 {
		ds.GroupBatchHist = ps.GroupBatchHist[:]
	}
	return ds
}
