// Command teleios-server serves a Strabon store over HTTP as an
// stSPARQL endpoint (SPARQL 1.1 Protocol): the web-accessible face of
// the Virtual Earth Observatory.
//
// Usage:
//
//	teleios-server [-addr :8080] [-store DIR] [-nt FILE] [-linked]
//	               [-cache N] [-max-concurrency N] [-timeout DUR]
//	               [-readonly] [-save] [-legacy-eval] [-legacy-sciql]
//
// The dataset is assembled from any combination of a saved store
// directory (-store, as written by Store.Save), an N-Triples file (-nt)
// and the synthetic linked open data layers (-linked). With -save the
// store — including any INSERT/DELETE applied through the endpoint — is
// written back to the -store directory on graceful shutdown (SIGINT or
// SIGTERM).
//
// Example:
//
//	teleios-server -linked -addr :8080 &
//	curl 'http://localhost:8080/sparql?format=geojson' \
//	  --data-urlencode 'query=PREFIX noa: <http://teleios.di.uoa.gr/noa#>
//	    SELECT ?s ?geom WHERE { ?s noa:hasGeometry ?geom } LIMIT 5'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/endpoint"
	"repro/internal/linkeddata"
	"repro/internal/sciql"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "load a saved Strabon store directory (see -save)")
	ntFile := flag.String("nt", "", "load an N-Triples file")
	linked := flag.Bool("linked", false, "preload the synthetic linked open data")
	cacheSize := flag.Int("cache", 128, "LRU result cache capacity in entries (negative disables)")
	maxConc := flag.Int("max-concurrency", 8, "maximum concurrently evaluating queries")
	queueDepth := flag.Int("queue", 0, "query queue depth (0 means 4*max-concurrency, negative for no queue)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query evaluation deadline")
	readonly := flag.Bool("readonly", false, "reject UPDATE statements")
	save := flag.Bool("save", false, "write the store back to -store on shutdown")
	legacyEval := flag.Bool("legacy-eval", false, "use the legacy binding-at-a-time evaluator instead of the vectorized id-space executor")
	legacySciQL := flag.Bool("legacy-sciql", false, "use the legacy tuple-at-a-time SciQL interpreter instead of the columnar kernel executor (applies to every SciQL engine in this process)")
	flag.Parse()

	sciql.DefaultDisableVectorized = *legacySciQL

	if err := run(*addr, *storeDir, *ntFile, *linked, *cacheSize, *maxConc, *queueDepth, *timeout, *readonly, *save, *legacyEval); err != nil {
		fmt.Fprintln(os.Stderr, "teleios-server:", err)
		os.Exit(1)
	}
}

func run(addr, storeDir, ntFile string, linked bool, cacheSize, maxConc, queueDepth int, timeout time.Duration, readonly, save, legacyEval bool) error {
	if save && storeDir == "" {
		return errors.New("-save requires -store")
	}

	st := strabon.NewStore()
	if storeDir != "" {
		// Bootstrap (start empty, create the store on shutdown) only
		// when the directory itself does not exist. A directory that
		// exists but fails to load — even with a file-not-found from a
		// half-written snapshot — must be an error: silently starting
		// empty would overwrite whatever survives there on -save.
		_, statErr := os.Stat(storeDir)
		switch {
		case statErr == nil:
			loaded, err := strabon.Load(storeDir)
			if err != nil {
				return fmt.Errorf("loading store %s: %w", storeDir, err)
			}
			st = loaded
		case os.IsNotExist(statErr) && save:
			// Fresh dataset bootstrap.
		default:
			return fmt.Errorf("store directory %s: %w", storeDir, statErr)
		}
	}
	if ntFile != "" {
		f, err := os.Open(ntFile)
		if err != nil {
			return err
		}
		n, err := st.LoadNTriples(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", ntFile, err)
		}
		fmt.Printf("teleios-server: loaded %d triples from %s\n", n, ntFile)
	}
	if linked {
		st.AddAll(linkeddata.All())
	}

	eng := stsparql.New(st)
	eng.DisableVectorized = legacyEval
	srv, err := endpoint.NewServer(endpoint.Config{
		Engine:         eng,
		Store:          st,
		MaxConcurrency: maxConc,
		QueueDepth:     queueDepth,
		QueryTimeout:   timeout,
		CacheSize:      cacheSize,
		ReadOnly:       readonly,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		stats := st.Stats()
		fmt.Printf("teleios-server: listening on %s (%d triples, %d spatial literals)\n",
			addr, stats.Triples, stats.SpatialLiterals)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Println("teleios-server: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	// Drain the worker pool before snapshotting: an abandoned
	// (timed-out) update may still be mutating the store after its HTTP
	// connection is gone, and Save must not race it. This also means a
	// Shutdown timeout cannot skip the save — updates already applied
	// would be lost.
	srv.Close()
	if save {
		if err := st.Save(storeDir); err != nil {
			return fmt.Errorf("saving store: %w", err)
		}
		fmt.Printf("teleios-server: store saved to %s\n", storeDir)
	}
	if shutErr != nil {
		return fmt.Errorf("shutdown: %w", shutErr)
	}
	return nil
}
