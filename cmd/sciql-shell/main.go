// Command sciql-shell is an interactive SciQL session, optionally with a
// satellite repository's frames pre-registered as arrays. Statements are
// terminated by a line containing only ";".
//
// Usage:
//
//	sciql-shell [-dir REPO]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/sciql"
	"repro/internal/vault"
)

func main() {
	dir := flag.String("dir", "", "repository of .sev products to register as arrays")
	legacy := flag.Bool("legacy-sciql", false, "use the legacy tuple-at-a-time interpreter instead of the columnar kernel executor")
	flag.Parse()

	eng := sciql.NewEngine()
	eng.DisableVectorized = *legacy
	if *dir != "" {
		v := vault.New()
		if err := v.Attach(*dir); err != nil {
			fmt.Fprintln(os.Stderr, "sciql-shell:", err)
			os.Exit(1)
		}
		for _, id := range v.IDs() {
			f, err := v.Frame(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sciql-shell:", err)
				os.Exit(1)
			}
			if err := ingest.RegisterFrame(eng, core.ArrayPrefix(id), f); err != nil {
				fmt.Fprintln(os.Stderr, "sciql-shell:", err)
				os.Exit(1)
			}
			fmt.Printf("registered %s (bands as %s_<band>)\n", id, core.ArrayPrefix(id))
		}
	}
	fmt.Println("sciql-shell: end statements with a ';' line.")

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var buf strings.Builder
	fmt.Print("sciql> ")
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == ";" {
			stmt := strings.TrimSpace(buf.String())
			buf.Reset()
			if stmt != "" {
				execute(eng, stmt)
			}
			fmt.Print("sciql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
}

func execute(eng *sciql.Engine, stmt string) {
	res, err := eng.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Table == nil {
		fmt.Printf("ok (%d affected)\n", res.Affected)
		return
	}
	t := res.Table
	var names []string
	for _, f := range t.Fields {
		names = append(names, f.Name)
	}
	fmt.Println(strings.Join(names, "\t"))
	for i := 0; i < t.NumRows(); i++ {
		var cells []string
		for _, c := range t.Cols {
			v := c.Value(i)
			if v == nil {
				cells = append(cells, "NULL")
			} else {
				cells = append(cells, fmt.Sprint(v))
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d row(s))\n", t.NumRows())
}
