// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be recorded as machine-readable
// artefacts (BENCH_PR2.json seeds the perf trajectory; CI uploads one per
// run).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
//
// Each benchmark line becomes an object with the benchmark name, iteration
// count, and every reported metric keyed by its unit (ns/op, B/op,
// allocs/op, and any b.ReportMetric custom units).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func main() {
	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// pkg headers repeat per package in multi-package runs; each result
	// records the one in effect when its line appeared.
	curPkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// Header lines: "goos: linux", "cpu: ...", "pkg: ...".
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
				if key == "pkg" {
					curPkg = v
				}
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Pkg: curPkg, Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value / unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
