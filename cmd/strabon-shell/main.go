// Command strabon-shell is an interactive stSPARQL endpoint over a
// Strabon store directory (as written by Store.Save) or an N-Triples
// file. Statements are terminated by a line containing only ";".
// Prefix any read statement with EXPLAIN to print the physical plan
// (join order, estimated vs. measured cardinalities, morsel
// parallelism) instead of the rows.
//
// Usage:
//
//	strabon-shell [-store DIR] [-nt FILE] [-linked]
//	              [-max-query-parallelism N] [-legacy-eval]
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"flag"

	"repro/internal/linkeddata"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

func main() {
	storeDir := flag.String("store", "", "load a saved Strabon store directory")
	ntFile := flag.String("nt", "", "load an N-Triples file")
	linked := flag.Bool("linked", false, "preload the synthetic linked open data")
	maxPar := flag.Int("max-query-parallelism", 0, "morsel-parallel workers per query (0 = all cores, 1 = serial)")
	legacyEval := flag.Bool("legacy-eval", false, "use the legacy binding-at-a-time evaluator")
	flag.Parse()

	st := strabon.NewStore()
	if *storeDir != "" {
		loaded, err := strabon.Load(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "strabon-shell:", err)
			os.Exit(1)
		}
		st = loaded
	}
	if *ntFile != "" {
		f, err := os.Open(*ntFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "strabon-shell:", err)
			os.Exit(1)
		}
		if _, err := st.LoadNTriples(f); err != nil {
			fmt.Fprintln(os.Stderr, "strabon-shell:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *linked {
		st.AddAll(linkeddata.All())
	}
	eng := stsparql.New(st)
	eng.MaxParallelism = *maxPar
	eng.DisableVectorized = *legacyEval
	stats := st.Stats()
	fmt.Printf("strabon-shell: %d triples, %d spatial literals. End statements with a ';' line (EXPLAIN prefix prints plans).\n",
		stats.Triples, stats.SpatialLiterals)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var buf strings.Builder
	fmt.Print("stsparql> ")
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == ";" {
			query := strings.TrimSpace(buf.String())
			buf.Reset()
			if query != "" {
				execute(eng, query)
			}
			fmt.Print("stsparql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
}

func execute(eng *stsparql.Engine, query string) {
	res, err := eng.Query(query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	switch {
	case res.Triples != nil:
		for _, t := range res.Triples {
			fmt.Println(t)
		}
	case len(res.Vars) == 1 && res.Vars[0] == "plan":
		// EXPLAIN output: print the plan lines verbatim.
		for _, b := range res.Bindings {
			fmt.Println(b["plan"].Value)
		}
	case res.Vars != nil:
		for _, b := range res.Bindings {
			var cells []string
			for _, v := range res.Vars {
				if t, ok := b[v]; ok {
					cells = append(cells, "?"+v+"="+t.String())
				}
			}
			fmt.Println(strings.Join(cells, " "))
		}
		fmt.Printf("(%d row(s))\n", len(res.Bindings))
	case res.Affected > 0:
		fmt.Printf("ok (%d affected)\n", res.Affected)
	default:
		fmt.Println(res.Bool)
	}
}
