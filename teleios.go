// Package teleios is the public API of the TELEIOS Virtual Earth
// Observatory reproduction (Koubarakis et al., VLDB 2012): a
// database-powered Earth-observation platform combining a SciQL array
// engine over a columnar kernel, the Strabon geospatial RDF store queried
// with stSPARQL, a Data Vault over external satellite archives, and the
// NOA fire-monitoring application (hotspot chain, thematic refinement,
// fire maps).
//
// Quickstart:
//
//	obs := teleios.Open(teleios.Options{LoadLinkedData: true})
//	teleios.GenerateArchive(dir, 128, 128, 4)   // synthetic SEVIRI feed
//	obs.AttachRepository(dir)
//	product, _ := obs.RunChain(obs.Products()[0])
//	obs.Refine()
//	m, _ := obs.FireMap(30000)
//
// See the examples/ directory for complete programs, and
// cmd/teleios-server for the stSPARQL HTTP endpoint (internal/endpoint)
// that makes the observatory web-accessible.
package teleios

import (
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/noa"
	"repro/internal/stsparql"
)

// Observatory is a Virtual Earth Observatory instance; see
// internal/core.Observatory for the full method set.
type Observatory = core.Observatory

// Options configure Open.
type Options = core.Options

// Product is one processing-chain output.
type Product = noa.Product

// Hotspot is one detected fire region.
type Hotspot = noa.Hotspot

// FireMap is a layered map document.
type FireMap = noa.FireMap

// RefineStats summarises a refinement run.
type RefineStats = noa.RefineStats

// QueryResult is an stSPARQL result.
type QueryResult = stsparql.Result

// Envelope is a geographic bounding box (WGS84 lon/lat degrees).
type Envelope = geo.Envelope

// Open creates an Observatory.
func Open(opts Options) *Observatory { return core.New(opts) }

// GenerateArchive writes a synthetic SEVIRI archive into dir.
func GenerateArchive(dir string, width, height, steps int) ([]string, error) {
	return core.GenerateArchive(dir, width, height, steps)
}

// ArrayPrefix converts a product ID to the SciQL identifier prefix its
// ingested band arrays are registered under.
func ArrayPrefix(id string) string { return core.ArrayPrefix(id) }

// Region is the demo's area of interest (the synthetic Greek scene).
var Region = Envelope{MinX: 21, MinY: 36, MaxX: 27, MaxY: 40}
